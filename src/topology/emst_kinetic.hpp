#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/cell_grid.hpp"
#include "geometry/point.hpp"
#include "geometry/point_store.hpp"
#include "geometry/torus.hpp"
#include "topology/emst_grid.hpp"
#include "topology/mst.hpp"

namespace manet {

/// Cumulative per-trace diagnostics of the kinetic engine, exposed for
/// bench/perf_kinetic.cpp and the kinetic test layer. Reset by start().
struct KineticStats {
  std::size_t steps = 0;               ///< advance() calls since start()
  std::size_t incremental_repairs = 0; ///< steps served by the delta path
  std::size_t full_rebuilds = 0;       ///< batch-style rebuilds (incl. start)
  std::size_t radius_growths = 0;      ///< rebuilds forced by a non-spanning candidate graph
  std::size_t radius_shrinks = 0;      ///< hysteresis-triggered radius reductions
  std::size_t mass_move_rebuilds = 0;  ///< rebuilds because most nodes moved at once
  std::size_t boundary_crossings = 0;  ///< cell-grid relinks of moved points
  std::size_t last_moved = 0;          ///< nodes that moved in the latest step
  std::size_t last_superseded = 0;     ///< mover-incident pool entries dropped in the latest step
  std::size_t last_delta = 0;          ///< mover-incident pairs re-derived by the latest cell scan
  std::size_t candidate_edges = 0;     ///< current candidate-set size
  double radius = 0.0;                 ///< maintained candidate radius
  bool dense_mode = false;             ///< trace is served by the embedded batch engine
};

/// Selects which engine run_mobile_trace drives (sim/mobile_trace.hpp).
/// kAuto defers to the process-wide kinetic_enabled() switch; the explicit
/// values exist so the differential tests can force either path regardless
/// of the environment.
enum class TraceEngine { kAuto, kBatch, kKinetic };

/// Overrides for kinetic_enabled(); kFromEnvironment (the default) re-reads
/// the MANET_KINETIC decision.
enum class KineticMode { kFromEnvironment, kForceOn, kForceOff };

/// True when mobile traces should run the kinetic engine. Defaults to ON;
/// the MANET_KINETIC environment variable (read once: "0"/"off"/"false"
/// disables) and set_kinetic_mode override it. Because the kinetic engine is
/// bit-identical to the batch engine, this switch can never change a result
/// — only how fast it is computed.
bool kinetic_enabled() noexcept;

/// Programmatic override for tests and benches. Call it from a single thread
/// while no traces are running (the switch is engine *selection*, consulted
/// once per trace).
void set_kinetic_mode(KineticMode mode) noexcept;

/// Kinetic (incremental) Euclidean/torus MST engine for mobile traces: the
/// temporal-coherence counterpart of the batch EmstEngine. A mobility step
/// moves each node by at most m (drunkard) or v_max*dt (waypoint), so
/// between consecutive steps almost all cell-grid bins and almost all
/// candidate edges are unchanged; the engine repairs both instead of
/// rebuilding them.
///
/// Per advance() the engine
///   1. detects moved nodes by exact coordinate comparison with the previous
///      step,
///   2. re-bins the nodes that crossed a cell boundary (an O(1) cell-index
///      update per crossing) and counting-sorts the bins into a flat
///      start/ids snapshot — O(n + cells), a few microseconds, and the
///      neighborhood scans below then run over contiguous memory instead of
///      chasing per-node links,
///   3. repairs the candidate-edge set under the REPAIR INVARIANT — the set
///      holds exactly the pairs within the maintained radius R, in (d2, u, v)
///      order: edges with two unmoved endpoints keep their distance and
///      their relative order; every edge touching a moved node is dropped,
///      and the cell neighborhood of each moved node (which covers its
///      radius ball) is scanned once to re-derive all its current in-radius
///      pairs — one distance evaluation per nearby pair, with no
///      entering-vs-surviving distinction to test, and
///   4. re-runs filtered Kruskal over the repaired set (already sorted, so
///      no per-step O(k log k) sort).
///
/// Fallbacks rebuild batch-style (full enumeration + sort at a doubling
/// radius) whenever the invariant cannot be repaired cheaply: the candidate
/// graph stops spanning (the radius must grow), most nodes crossed cell
/// boundaries at once (teleports, fresh deployments), or the radius is far above the
/// current bottleneck for long enough (hysteresis shrink). Dense regimes
/// (n < kDenseCutoff, or an initial radius a large fraction of the region)
/// delegate every call to an embedded batch EmstEngine.
///
/// BIT-IDENTITY: filtered Kruskal under the strict total order (d2, u, v)
/// accepts a *unique* spanning tree, and any candidate set that contains all
/// pairs within a spanning radius yields that same tree (every full-MST edge
/// weighs at most the bottleneck <= R). Both engines compute distances with
/// the identical squared_distance / torus_squared_distance + covering_radius
/// arithmetic, so the kinetic tree — edges, order, and weight bits — equals
/// the batch tree on every step, and everything derived from it (bottleneck,
/// weight multiset, breakpoint curves, MTRM checksums) is bit-identical.
/// tests/kinetic_differential_test.cpp pins this, including the PR 2/4
/// golden FNV-1a checksums through the kinetic path.
///
/// Allocation discipline: all buffers are pooled; after warm-up an advance()
/// performs ZERO steady-state heap allocations (tests/alloc_discipline_test
/// pins 0, one stricter than the batch path's rebuild-reuse). Not
/// thread-safe; one engine per concurrent trace (sim/trace_workspace.hpp).
template <int D>
class KineticEmstEngine {
 public:
  /// Same dense cutoff as the batch engine, so both select the dense path on
  /// exactly the same inputs.
  static constexpr std::size_t kDenseCutoff = EmstEngine<D>::kDenseCutoff;

  KineticEmstEngine() = default;
  KineticEmstEngine(const KineticEmstEngine&) = delete;
  KineticEmstEngine& operator=(const KineticEmstEngine&) = delete;

  /// Begins a Euclidean-metric trace: full build over `points` (all inside
  /// `box`). Returns the n-1 MST edges sorted ascending by weight (empty for
  /// n <= 1), valid until the next call on this engine.
  std::span<const WeightedEdge> start(std::span<const Point<D>> points, const Box<D>& box);

  /// Begins a trace under the flat-torus metric on [0, side]^D.
  std::span<const WeightedEdge> start_torus(std::span<const Point<D>> points, double side);

  /// Advances the current trace one mobility step: `points` are the same
  /// nodes at their new positions (same size, same region). Same return
  /// contract as start(). Requires a preceding start()/start_torus().
  std::span<const WeightedEdge> advance(std::span<const Point<D>> points);

  const KineticStats& stats() const noexcept { return stats_; }

 private:
  /// Same layout and sort key as EmstEngine's candidate.
  struct Candidate {
    double d2;
    std::uint32_t u;
    std::uint32_t v;
  };

  /// Mass-move rebuild threshold, applied twice: more than this fraction of
  /// nodes moved AND more than this fraction of the movers changed cell.
  /// Both at once mean teleport-scale displacement (the maintained radius
  /// is stale and the bins are mostly wrong); a sub-cell mass move — every
  /// node drifting a little — repairs cheaper than it rebuilds.
  static constexpr double kMassMoveFraction = 0.5;
  /// Hysteresis shrink: truncate the pool to kShrinkTarget * bottleneck
  /// (a sorted-prefix cut, no rebuild) after kShrinkPatience consecutive
  /// steps with radius > kShrinkTrigger * that snug radius. The target
  /// margin sizes the steady-state candidate set (~target^D times the
  /// spanning minimum), so every O(E) repair pass scales with it; the snug
  /// 1.05 measures substantially faster than looser margins and still
  /// absorbs the bottleneck's typical step-to-step drift — a step where the
  /// bottleneck outruns the margin is caught by Kruskal failing to span and
  /// only costs that one batch-style rebuild. The trigger tolerates modest
  /// overshoot (shrinking on every bottleneck wiggle would invite growth
  /// rebuilds right back); the patience filters transient dips.
  static constexpr double kShrinkTrigger = 1.1;
  static constexpr double kShrinkTarget = 1.05;
  static constexpr std::size_t kShrinkPatience = 4;
  /// Below this size the comparator sort beats the radix passes' fixed costs.
  static constexpr std::size_t kRadixCutoff = 64;

  template <bool Torus>
  std::span<const WeightedEdge> start_impl(std::span<const Point<D>> points, double side);
  template <bool Torus>
  std::span<const WeightedEdge> advance_impl(std::span<const Point<D>> points);
  /// Batch-style rebuild: enumerate + sort + Kruskal at a doubling radius
  /// starting from `start_radius`, then rebuild the kinetic cell grid and
  /// re-baseline the prev_ position store.
  template <bool Torus>
  void full_rebuild(std::span<const Point<D>> points, double start_radius);
  /// Kruskal over the (sorted) candidate set; true when the tree spans.
  bool run_kruskal();
  /// Sorts candidates into the strict (d2, u, v) total order via a stable
  /// LSD radix on a monotone 32-bit rescaling of d2 (every candidate
  /// satisfies d2 <= d2_bound), then repairs equal-key runs with the exact
  /// comparator. The result is exactly the unique std::sort sequence. Uses
  /// the pooled radix_tmp_ scratch buffer.
  void sort_candidates(std::vector<Candidate>& a, double d2_bound);
  /// Applies the post-step radius hysteresis; may trigger a shrink rebuild.
  template <bool Torus>
  void maybe_shrink(std::span<const Point<D>> points);

  // -- cell binning over the *current* positions ---------------------------
  void rebuild_kinetic_grid(std::span<const Point<D>> points);
  std::array<std::size_t, D> cell_coords(const Point<D>& p) const noexcept;
  std::size_t flat_index(const std::array<std::size_t, D>& c) const noexcept;
  /// Counting-sorts cell_of_ into the flat cell_start_/cell_ids_ snapshot
  /// consumed by scan_mover, and gathers the matching SoA coordinate
  /// snapshot (snap_) in CSR slot order. O(n + cells) per step.
  void build_cell_snapshot();
  /// Re-derives every current in-radius pair of mover i and appends it to
  /// changed_. The (2w+1)^D cell neighborhood of i's (current-position)
  /// cell, where w = near_window_ satisfies w * cell_size_ >= radius_, is a
  /// superset of i's radius ball. Axis 0 is the least-significant digit of
  /// the flat cell index, so each axis-0 row of the window is ONE contiguous
  /// CSR slot run (two after a torus wrap split): the squared distances of a
  /// whole run are computed by one batched kernel call over the snap_ SoA
  /// snapshot, then filtered in slot order. Torus grids too coarse for
  /// wrap-distinct neighbor cells (cells_per_axis < 2w+1) batch over all
  /// nodes instead. Cells are sized ~radius/2 (w = 2) when the region
  /// allows, which over-scans ~(2.5/3)^D less area than radius-sized cells.
  template <bool Torus>
  void scan_mover(std::uint32_t i);
  /// One batched kernel call + in-radius filter over the slot run
  /// [run_begin, run_end): candidate i (coordinates `q`) against
  /// snap_/cell_ids_, or against cur_ directly (ids = identity) when
  /// `direct_index` — the torus all-scan fallback.
  template <bool Torus>
  void emit_mover_run(std::uint32_t i, const double* q, std::size_t run_begin,
                      std::size_t run_end, bool direct_index);

  // Trace configuration.
  bool started_ = false;
  bool torus_ = false;
  bool dense_mode_ = false;
  double side_ = 0.0;
  std::size_t n_ = 0;

  // Maintained candidate radius (repair invariant: edges_ holds exactly the
  // pairs with d2 <= r2_ at the prev_ positions, sorted by (d2, u, v)).
  double radius_ = 0.0;
  double r2_ = 0.0;
  std::size_t shrink_streak_ = 0;

  // Cell binning (geometry mirrors CellGrid's clamping). cell_of_ is the
  // maintained state — pass 2 updates it in O(1) per boundary crossing —
  // and cell_start_/cell_ids_ are its per-step counting-sort snapshot
  // (CSR layout: ids of cell c live at [cell_start_[c], cell_start_[c+1])).
  double cell_size_ = 0.0;
  std::size_t cells_per_axis_ = 0;
  std::size_t total_cells_ = 0;
  int near_window_ = 1;  ///< neighbor-cell half-window; near_window_ * cell_size_ >= radius_
  std::vector<std::size_t> cell_of_;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_cursor_;
  std::vector<std::uint32_t> cell_ids_;

  CellGrid<D> grid_;     ///< full-rebuild enumeration only
  EmstEngine<D> batch_;  ///< dense-mode delegate (identical dense code path)

  // SoA position state (geometry/point_store.hpp). cur_ is the current
  // step's gather; prev_ holds the positions the pool and bins were derived
  // at (the repair-invariant baseline) and is refreshed by an O(1) swap with
  // cur_ — unmoved coordinates are equal in both, movers were just
  // re-derived. snap_ mirrors cell_ids_ in CSR slot order so scan_mover's
  // batched kernels stream contiguous memory.
  PointStore<D> cur_;
  PointStore<D> prev_;
  PointStore<D> snap_;
  std::vector<double> near_d2_;  ///< batched-kernel d2 output, sized n

  std::vector<Candidate> edges_;    ///< the invariant candidate set
  std::vector<Candidate> changed_;  ///< recomputed + entering edges, sorted per step
  std::vector<Candidate> merged_;   ///< merge target, swapped with edges_
  std::vector<Candidate> radix_tmp_;  ///< scatter scratch for sort_candidates
  std::vector<std::uint32_t> moved_;
  std::vector<std::uint8_t> moved_flag_;

  /// Union-by-size forest with path halving, specialized for the per-step
  /// Kruskal loop: 32-bit ids keep both arrays L1-sized (graph/union_find.hpp
  /// stores size_t), and the component-count bookkeeping Kruskal never reads
  /// is omitted. Acceptance decisions depend only on connectivity, so the
  /// resulting tree is identical to one built over any other union-find.
  struct KruskalForest {
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> size;

    void reset(std::size_t n) {
      parent.resize(n);
      size.assign(n, 1);
      for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
    }
    std::uint32_t find(std::uint32_t x) noexcept {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];  // path halving
        x = parent[x];
      }
      return x;
    }
    bool unite(std::uint32_t a, std::uint32_t b) noexcept {
      a = find(a);
      b = find(b);
      if (a == b) return false;
      if (size[a] < size[b]) std::swap(a, b);
      parent[b] = a;
      size[a] += size[b];
      return true;
    }
  };
  KruskalForest dsu_;
  std::vector<WeightedEdge> mst_;
  KineticStats stats_;
};

}  // namespace manet
