#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <algorithm>

#include "geometry/point.hpp"
#include "graph/union_find.hpp"
#include "support/error.hpp"
#include "topology/mst.hpp"

namespace manet {

/// The RANGE ASSIGNMENT problem of the paper's companion work [11] (Santi,
/// Blough, Vainstein, MobiHoc 2001) and the topology-control literature it
/// cites [6, 9, 10]: instead of one common transmitting range, give every
/// node its own range r_i such that the induced symmetric communication
/// graph — edge (u, v) iff BOTH u and v can reach each other, i.e.
/// dist(u,v) <= min(r_u, r_v) — is connected, minimizing the total energy
/// cost  sum_i r_i^alpha.
class RangeAssignment {
 public:
  /// Takes per-node ranges. Throws ConfigError (in every build mode) unless
  /// all ranges are >= 0 — this is a user-configuration boundary, reachable
  /// straight from CLI input.
  explicit RangeAssignment(std::vector<double> ranges);

  std::size_t node_count() const noexcept { return ranges_.size(); }
  std::span<const double> ranges() const noexcept { return ranges_; }
  /// Requires node < node_count() (programmer contract: ContractViolation).
  double range(std::size_t node) const;

  /// Total energy cost sum_i r_i^alpha. Throws ConfigError unless
  /// alpha >= 1 (matching EnergyModel's constructor).
  double cost(double alpha = 2.0) const;

  /// The largest assigned range (the worst single node's exposure).
  double max_range() const;

 private:
  std::vector<double> ranges_;
};

/// The homogeneous assignment the paper analyses: every node gets the
/// critical (common) transmitting range of the point set.
template <int D>
RangeAssignment homogeneous_assignment(std::span<const Point<D>> points);

/// The MST-based per-node assignment: r_i is the length of the longest MST
/// edge incident to node i. This keeps every MST edge bidirectional, so the
/// symmetric communication graph contains the MST and is connected; the
/// construction is the classical 2-approximation for minimum-cost symmetric
/// range assignment.
template <int D>
RangeAssignment mst_assignment(std::span<const Point<D>> points);

/// True iff the symmetric communication graph induced by `assignment` over
/// `points` (edge iff dist <= min(r_u, r_v)) is connected. O(n^2).
template <int D>
bool symmetric_graph_connected(std::span<const Point<D>> points,
                               const RangeAssignment& assignment);

/// Fraction of homogeneous cost saved by the MST-based per-node assignment,
/// 1 - cost_mst / cost_homogeneous, at path-loss exponent alpha. Returns 0
/// for n <= 1 (both costs are 0).
template <int D>
double per_node_assignment_savings(std::span<const Point<D>> points, double alpha = 2.0);

// ---------------------------------------------------------------------------
// Template definitions.
// ---------------------------------------------------------------------------

template <int D>
RangeAssignment homogeneous_assignment(std::span<const Point<D>> points) {
  const auto mst = euclidean_mst(points);
  const double rc = tree_bottleneck(mst);
  return RangeAssignment(std::vector<double>(points.size(), rc));
}

template <int D>
RangeAssignment mst_assignment(std::span<const Point<D>> points) {
  std::vector<double> ranges(points.size(), 0.0);
  for (const WeightedEdge& e : euclidean_mst(points)) {
    ranges[e.u] = std::max(ranges[e.u], e.weight);
    ranges[e.v] = std::max(ranges[e.v], e.weight);
  }
  return RangeAssignment(std::move(ranges));
}

template <int D>
bool symmetric_graph_connected(std::span<const Point<D>> points,
                               const RangeAssignment& assignment) {
  MANET_EXPECTS(points.size() == assignment.node_count());
  if (points.size() <= 1) return true;

  UnionFind dsu(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double allowed = std::min(assignment.range(i), assignment.range(j));
      if (squared_distance(points[i], points[j]) <= allowed * allowed) dsu.unite(i, j);
    }
  }
  return dsu.all_connected();
}

template <int D>
double per_node_assignment_savings(std::span<const Point<D>> points, double alpha) {
  if (points.size() <= 1) return 0.0;
  const double homogeneous = homogeneous_assignment(points).cost(alpha);
  const double per_node = mst_assignment(points).cost(alpha);
  MANET_ENSURES(homogeneous > 0.0);
  return 1.0 - per_node / homogeneous;
}

}  // namespace manet
