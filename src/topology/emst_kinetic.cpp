#include "topology/emst_kinetic.hpp"

#include <algorithm>
// manet-lint: allow(thread-confinement) — for the engine-selection flag below; see its comment
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"

namespace manet {

namespace {

/// Work counters shared by every KineticEmstEngine<D> instantiation, in the
/// same function-local-static bundle style as the batch engine's. Pure work
/// counters — deterministic for a fixed input at any thread count.
struct KineticMetrics {
  metrics::Counter traces = metrics::counter("kinetic.traces");
  metrics::Counter steps = metrics::counter("kinetic.steps");
  metrics::Counter incremental = metrics::counter("kinetic.incremental_repairs");
  metrics::Counter rebuilds = metrics::counter("kinetic.full_rebuilds");
  metrics::Counter growths = metrics::counter("kinetic.radius_growths");
  metrics::Counter shrinks = metrics::counter("kinetic.radius_shrinks");
  metrics::Counter dense = metrics::counter("kinetic.dense_traces");
};

KineticMetrics& kinetic_metrics() {
  static KineticMetrics bundle;
  return bundle;
}

bool environment_kinetic_default() {
  const char* text = std::getenv("MANET_KINETIC");
  if (text == nullptr || *text == '\0') return true;
  const std::string_view value(text);
  return !(value == "0" || value == "off" || value == "OFF" || value == "false" ||
           value == "FALSE");
}

/// -1 = defer to MANET_KINETIC, 0 = forced off, 1 = forced on. Atomic only
/// so concurrent trace workers can read the selection without a data race;
/// the value never feeds a result (both engines are bit-identical).
// manet-lint: allow(thread-confinement) — engine-selection flag read concurrently by trace workers; it selects between two bit-identical engines and never influences any computed value
std::atomic<int> g_kinetic_mode{-1};

bool candidate_less(double a_d2, std::uint32_t a_u, std::uint32_t a_v, double b_d2,
                    std::uint32_t b_u, std::uint32_t b_v) noexcept {
  if (a_d2 != b_d2) return a_d2 < b_d2;
  if (a_u != b_u) return a_u < b_u;
  return a_v < b_v;
}

}  // namespace

bool kinetic_enabled() noexcept {
  const int mode = g_kinetic_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  static const bool from_environment = environment_kinetic_default();
  return from_environment;
}

void set_kinetic_mode(KineticMode mode) noexcept {
  int value = -1;
  if (mode == KineticMode::kForceOn) value = 1;
  if (mode == KineticMode::kForceOff) value = 0;
  g_kinetic_mode.store(value, std::memory_order_relaxed);
}

template <int D>
std::array<std::size_t, D> KineticEmstEngine<D>::cell_coords(
    const Point<D>& p) const noexcept {
  // Same arithmetic as CellGrid::cell_coords so boundary-sitting coordinates
  // bin consistently in both structures.
  std::array<std::size_t, D> c{};
  for (int i = 0; i < D; ++i) {
    const double x = p.coords[i] / cell_size_;
    auto idx = static_cast<std::size_t>(x < 0.0 ? 0.0 : x);
    c[i] = std::min(idx, cells_per_axis_ - 1);
  }
  return c;
}

template <int D>
std::size_t KineticEmstEngine<D>::flat_index(
    const std::array<std::size_t, D>& c) const noexcept {
  std::size_t idx = 0;
  for (int i = D - 1; i >= 0; --i) idx = idx * cells_per_axis_ + c[i];
  return idx;
}

template <int D>
void KineticEmstEngine<D>::rebuild_kinetic_grid(std::span<const Point<D>> points) {
  // Mirror CellGrid's clamping: cap the cell count at ~4x the point count
  // and at 2^12 per axis; clamping only ever coarsens, so cell_size_ >=
  // radius_ and the 3^D neighborhood always covers the query radius.
  constexpr std::size_t kMaxCellsPerAxis = 1u << 12;
  const double budget = 4.0 * static_cast<double>(n_) + 64.0;
  const auto per_axis_budget =
      static_cast<std::size_t>(std::pow(budget, 1.0 / static_cast<double>(D)));
  const std::size_t max_per_axis =
      std::min(kMaxCellsPerAxis, std::max<std::size_t>(1, per_axis_budget));

  // Prefer cells of ~radius/2 with a +-2-cell scan window: the scanned area
  // per query drops to (5/6)^D of radius-sized cells' 3^D neighborhood.
  // Fall back to radius-sized cells (+-1 window) when the region or the
  // budget cannot fit at least five fine cells per axis.
  const auto fine_per_axis = static_cast<std::size_t>(2.0 * side_ / radius_);
  if (std::min(fine_per_axis, max_per_axis) >= 5) {
    cells_per_axis_ = std::min(fine_per_axis, max_per_axis);
    near_window_ = 2;
  } else {
    cells_per_axis_ = static_cast<std::size_t>(side_ / radius_);
    cells_per_axis_ = std::max<std::size_t>(1, std::min(cells_per_axis_, max_per_axis));
    near_window_ = 1;
  }
  cell_size_ = side_ / static_cast<double>(cells_per_axis_);
  MANET_ENSURE(cells_per_axis_ == 1 ||
               cell_size_ * near_window_ >= radius_ * (1.0 - 1e-12));

  total_cells_ = 1;
  for (int i = 0; i < D; ++i) total_cells_ *= cells_per_axis_;
  // Reserve the budget cap up front: a radius shrink refines the cells, and
  // growing these on a warm advance() would break the zero-steady-state-
  // allocation discipline.
  std::size_t max_total_cells = 1;
  for (int i = 0; i < D; ++i) max_total_cells *= max_per_axis;
  cell_start_.reserve(max_total_cells + 1);
  cell_cursor_.reserve(max_total_cells);
  cell_of_.resize(n_);
  cell_start_.resize(total_cells_ + 1);
  cell_cursor_.resize(total_cells_);
  cell_ids_.resize(n_);
  // Scratch for the batched scans; sized once so warm advances stay
  // allocation-free even after a radius-growth rebuild mid-trace.
  snap_.reserve(n_);
  cur_.reserve(n_);
  near_d2_.resize(n_);
  for (std::size_t p = 0; p < n_; ++p) cell_of_[p] = flat_index(cell_coords(points[p]));
}

template <int D>
void KineticEmstEngine<D>::build_cell_snapshot() {
  // Counting sort of cell_of_ into CSR form. Ids come out ascending within
  // each cell, but the order is immaterial: it only affects the order edges
  // are *collected* in, and every collected batch is sorted by the strict
  // (d2, u, v) key before use.
  std::fill(cell_start_.begin(), cell_start_.end(), 0u);
  for (std::size_t p = 0; p < n_; ++p) ++cell_start_[cell_of_[p] + 1];
  for (std::size_t c = 0; c < total_cells_; ++c) cell_start_[c + 1] += cell_start_[c];
  std::memcpy(cell_cursor_.data(), cell_start_.data(),
              total_cells_ * sizeof(std::uint32_t));
  for (std::size_t p = 0; p < n_; ++p) {
    cell_ids_[cell_cursor_[cell_of_[p]]++] = static_cast<std::uint32_t>(p);
  }
  // SoA coordinate snapshot matching cell_ids_: every cell (and every axis-0
  // row of cells) is a contiguous run per axis, ready for the batched
  // kernels. Gather from cur_, which advance_impl filled this step.
  snap_.assign_gather(cur_, std::span<const std::uint32_t>(cell_ids_.data(), n_));
}

template <int D>
template <bool Torus>
void KineticEmstEngine<D>::emit_mover_run(std::uint32_t i, const double* q,
                                          std::size_t run_begin, std::size_t run_end,
                                          bool direct_index) {
  const std::size_t count = run_end - run_begin;
  if (count == 0) return;
  kernels::AxisPointers<D> axes;
  const PointStore<D>& coords = direct_index ? cur_ : snap_;
  for (int a = 0; a < D; ++a) {
    axes[static_cast<std::size_t>(a)] = coords.axis(a) + run_begin;
  }
  double* d2 = near_d2_.data();
  if constexpr (Torus) {
    kernels::batch_torus_squared_distance<D>(axes, count, q, side_, d2);
  } else {
    kernels::batch_squared_distance<D>(axes, count, q, d2);
  }
  const std::uint32_t* ids = direct_index ? nullptr : cell_ids_.data() + run_begin;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t j =
        ids != nullptr ? ids[k] : static_cast<std::uint32_t>(run_begin + k);
    if (j == i) continue;
    // Both endpoints moved: emit once, from the smaller id (the larger-id
    // mover skips the pair).
    if (moved_flag_[j] != 0 && j < i) continue;
    if (d2[k] > r2_) continue;
    changed_.push_back({d2[k], std::min(i, j), std::max(i, j)});
  }
}

template <int D>
template <bool Torus>
void KineticEmstEngine<D>::scan_mover(std::uint32_t i) {
  const int w = near_window_;
  std::array<double, static_cast<std::size_t>(D)> q;
  for (int a = 0; a < D; ++a) q[static_cast<std::size_t>(a)] = cur_.axis(a)[i];

  if (Torus && cells_per_axis_ < static_cast<std::size_t>(2 * w + 1)) {
    // Wrapped +-w offsets alias below 2w+1 cells per axis (the same
    // breakdown CellGrid's torus fallback handles): batch over all nodes in
    // index order, straight from cur_.
    emit_mover_run<Torus>(i, q.data(), 0, n_, /*direct_index=*/true);
    return;
  }

  // Axis 0 is the least-significant digit of the flat cell index, so the
  // 2w+1 window cells of one axis-0 row are contiguous both in flat index
  // and (via cell_start_) in CSR slots: each row becomes one batched kernel
  // run instead of per-cell, per-pair scalar work. Higher axes step by the
  // usual odometer. A torus wrap splits a row into at most two runs
  // (2w+1 <= cells_per_axis here, so lo/hi cannot both overflow).
  const auto center = cell_coords(cur_.get(i));
  const auto cells = static_cast<long long>(cells_per_axis_);
  const auto row_base_of = [this](const std::array<std::size_t, D>& c) {
    std::size_t idx = 0;
    for (int a = D - 1; a >= 1; --a) idx = idx * cells_per_axis_ + c[static_cast<std::size_t>(a)];
    return idx * cells_per_axis_;
  };
  const auto scan_row = [this, i, &q, cells](std::size_t row_base, long long lo,
                                             long long hi) {
    if constexpr (Torus) {
      if (lo < 0) {
        emit_mover_run<Torus>(i, q.data(), cell_start_[row_base + static_cast<std::size_t>(lo + cells)],
                              cell_start_[row_base + static_cast<std::size_t>(cells)], false);
        lo = 0;
      } else if (hi >= cells) {
        emit_mover_run<Torus>(i, q.data(), cell_start_[row_base],
                              cell_start_[row_base + static_cast<std::size_t>(hi - cells + 1)],
                              false);
        hi = cells - 1;
      }
    } else {
      lo = std::max<long long>(lo, 0);
      hi = std::min<long long>(hi, cells - 1);
    }
    emit_mover_run<Torus>(i, q.data(), cell_start_[row_base + static_cast<std::size_t>(lo)],
                          cell_start_[row_base + static_cast<std::size_t>(hi + 1)], false);
  };

  const long long lo0 = static_cast<long long>(center[0]) - w;
  const long long hi0 = static_cast<long long>(center[0]) + w;
  if constexpr (D == 1) {
    scan_row(0, lo0, hi0);
    return;
  } else {
    // Odometer over axes 1..D-1 offsets in [-w, w].
    std::array<int, D> offset{};
    for (int a = 1; a < D; ++a) offset[static_cast<std::size_t>(a)] = -w;
    for (;;) {
      std::array<std::size_t, D> other{};
      bool in_grid = true;
      for (int a = 1; a < D; ++a) {
        auto shifted = static_cast<long long>(center[static_cast<std::size_t>(a)]) +
                       offset[static_cast<std::size_t>(a)];
        if constexpr (Torus) {
          if (shifted < 0) shifted += cells;
          if (shifted >= cells) shifted -= cells;
        } else {
          if (shifted < 0 || shifted >= cells) {
            in_grid = false;
            break;
          }
        }
        other[static_cast<std::size_t>(a)] = static_cast<std::size_t>(shifted);
      }
      if (in_grid) scan_row(row_base_of(other), lo0, hi0);
      int axis = 1;
      while (axis < D) {
        if (++offset[static_cast<std::size_t>(axis)] <= w) break;
        offset[static_cast<std::size_t>(axis)] = -w;
        ++axis;
      }
      if (axis == D) break;
    }
  }
}

template <int D>
void KineticEmstEngine<D>::sort_candidates(std::vector<Candidate>& a, double d2_bound) {
  const std::size_t size = a.size();
  if (size < kRadixCutoff) {
    std::sort(a.begin(), a.end(), [](const Candidate& x, const Candidate& y) {
      return candidate_less(x.d2, x.u, x.v, y.d2, y.u, y.v);
    });
    return;
  }

  // Stable LSD radix on a monotone 32-bit rescaling of d2: every candidate
  // satisfies 0 <= d2 <= d2_bound, so key = floor(d2 * 2^32 / d2_bound') is
  // a non-decreasing map into [0, 2^32) (double multiplication rounds
  // monotonically, the product stays far below 2^53) and three 11-bit digit
  // passes order it. Distinct d2 may collide on a key (~n^2/2^32 expected
  // collisions); the repair scan below re-sorts equal-key runs with the
  // exact (d2, u, v) comparator, which also puts equal-d2 duplicates into
  // (u, v) order — so the result is exactly the unique std::sort sequence,
  // at roughly half the scatter traffic of a full 64-bit-key radix.
  MANET_EXPECTS(d2_bound > 0.0);
  const double scale = 4294967296.0 / (d2_bound * (1.0 + 1e-9));
  const auto key_of = [scale](const Candidate& c) noexcept {
    return static_cast<std::uint32_t>(c.d2 * scale);
  };

  constexpr int kDigits = 3;  // 3 x 11 bits covers the 32-bit key
  constexpr int kDigitBits = 11;
  constexpr std::uint32_t kDigitMask = (1u << kDigitBits) - 1;
  std::array<std::uint32_t, kDigits << kDigitBits> hist{};
  for (const Candidate& c : a) {
    const std::uint32_t key = key_of(c);
    for (int d = 0; d < kDigits; ++d)
      ++hist[(d << kDigitBits) + ((key >> (kDigitBits * d)) & kDigitMask)];
  }

  radix_tmp_.resize(size);
  Candidate* src = a.data();
  Candidate* dst = radix_tmp_.data();
  for (int pos = 0; pos < kDigits; ++pos) {
    std::uint32_t* counts = hist.data() + (pos << kDigitBits);
    // All elements share this digit: the scatter would be the identity.
    bool trivial = false;
    for (std::size_t b = 0; b <= kDigitMask; ++b) {
      if (counts[b] == size) {
        trivial = true;
        break;
      }
      if (counts[b] != 0) break;
    }
    if (trivial) continue;
    std::uint32_t offset = 0;
    for (std::size_t b = 0; b <= kDigitMask; ++b) {
      const std::uint32_t count = counts[b];
      counts[b] = offset;
      offset += count;
    }
    const int shift = kDigitBits * pos;
    for (std::size_t i = 0; i < size; ++i) {
      dst[counts[(key_of(src[i]) >> shift) & kDigitMask]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != a.data()) a.swap(radix_tmp_);

  // Repair equal-key runs (key collisions and genuine d2 ties) with the
  // exact comparator. Runs are almost always length 1: one linear scan.
  std::size_t i = 0;
  while (i < size) {
    std::size_t j = i + 1;
    while (j < size && key_of(a[j]) == key_of(a[i])) ++j;
    if (j - i > 1) {
      std::sort(a.begin() + static_cast<std::ptrdiff_t>(i),
                a.begin() + static_cast<std::ptrdiff_t>(j),
                [](const Candidate& x, const Candidate& y) {
                  return candidate_less(x.d2, x.u, x.v, y.d2, y.u, y.v);
                });
    }
    i = j;
  }
}

template <int D>
bool KineticEmstEngine<D>::run_kruskal() {
  dsu_.reset(n_);
  mst_.clear();
  for (const Candidate& c : edges_) {
    if (dsu_.unite(c.u, c.v)) {
      mst_.push_back({c.u, c.v, covering_radius(c.d2)});
      if (mst_.size() + 1 == n_) return true;
    }
  }
  return mst_.size() + 1 == n_;
}

template <int D>
template <bool Torus>
void KineticEmstEngine<D>::full_rebuild(std::span<const Point<D>> points,
                                        double start_radius) {
  ++stats_.full_rebuilds;
  kinetic_metrics().rebuilds.increment();
  const double r_max = (Torus ? 0.5 : 1.0) * side_ * std::sqrt(static_cast<double>(D));
  MANET_EXPECTS(start_radius > 0.0);
  double radius = std::min(start_radius, r_max);
  const Box<D> box(side_);
  for (;;) {
    grid_.rebuild(points, box, radius);
    MANET_INVARIANT(radius <= grid_.max_query_radius());
    edges_.clear();
    const auto collect = [this](std::size_t i, std::size_t j, double d2) {
      edges_.push_back({d2, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    };
    if constexpr (Torus) {
      grid_.for_each_torus_pair_within(radius, collect);
    } else {
      grid_.for_each_pair_within(radius, collect);
    }
    sort_candidates(edges_, radius * radius);
    if (run_kruskal()) break;
    MANET_INVARIANT(radius < r_max);  // the complete graph always spans
    radius = std::min(radius * 2.0, r_max);
    ++stats_.radius_growths;
    kinetic_metrics().growths.increment();
  }

  // Retighten: a doubling overshoot (or an inflated caller radius) would
  // otherwise fix the candidate-set size — and with it the cost of every
  // subsequent filter/merge/Kruskal pass — until the next rebuild. The pool
  // is sorted by (d2, u, v), so the pairs within the snug radius are exactly
  // a prefix: truncation, no re-enumeration. The tree is unaffected because
  // every accepted edge has weight <= bottleneck <= the snug radius.
  const double bottleneck = mst_.empty() ? 0.0 : mst_.back().weight;
  if (bottleneck > 0.0) {
    const double snug = kShrinkTarget * bottleneck;
    if (snug < radius) {
      radius = snug;
      const auto first_outside = std::upper_bound(
          edges_.begin(), edges_.end(), radius * radius,
          [](double r2, const Candidate& c) { return r2 < c.d2; });
      edges_.erase(first_outside, edges_.end());
    }
  }

  radius_ = radius;
  r2_ = radius * radius;
  rebuild_kinetic_grid(points);
  prev_.assign(points);
  shrink_streak_ = 0;
  stats_.radius = radius_;
  stats_.candidate_edges = edges_.size();
}

template <int D>
template <bool Torus>
void KineticEmstEngine<D>::maybe_shrink(std::span<const Point<D>> points) {
  // When the maintained radius sits above the bottleneck's snug margin for a
  // sustained stretch (after a growth spike, an initial radius sized for a
  // sparser configuration, or a drift-down of the bottleneck itself), the
  // candidate set is ~(R/b)^D times larger than needed. Shrinking needs no
  // rebuild: the pool is sorted by d2, so the snug pool is exactly a prefix
  // — truncate it and re-derive the cell geometry for the smaller radius,
  // O(n) in total. The patience hysteresis keeps bottleneck jitter from
  // alternating cheap shrinks with expensive growth rebuilds.
  const double bottleneck = mst_.empty() ? 0.0 : mst_.back().weight;
  const double snug = kShrinkTarget * bottleneck;
  if (bottleneck > 0.0 && radius_ > kShrinkTrigger * snug) {
    if (++shrink_streak_ >= kShrinkPatience) {
      ++stats_.radius_shrinks;
      kinetic_metrics().shrinks.increment();
      radius_ = snug;
      r2_ = snug * snug;
      const auto first_outside = std::upper_bound(
          edges_.begin(), edges_.end(), r2_,
          [](double r2, const Candidate& c) { return r2 < c.d2; });
      edges_.resize(static_cast<std::size_t>(first_outside - edges_.begin()));
      stats_.candidate_edges = edges_.size();
      stats_.radius = radius_;
      rebuild_kinetic_grid(points);
      shrink_streak_ = 0;
    }
  } else {
    shrink_streak_ = 0;
  }
}

template <int D>
template <bool Torus>
std::span<const WeightedEdge> KineticEmstEngine<D>::start_impl(
    std::span<const Point<D>> points, double side) {
  MANET_EXPECTS(side > 0.0);
  if (points.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError("KineticEmstEngine: more than 2^32 points are not supported");
  }
  kinetic_metrics().traces.increment();
  started_ = true;
  torus_ = Torus;
  side_ = side;
  n_ = points.size();
  stats_ = {};
  shrink_streak_ = 0;

  const double r0 = emst_initial_radius<D>(n_, side_);
  dense_mode_ = n_ < kDenseCutoff || r0 >= 0.5 * side_;
  stats_.dense_mode = dense_mode_;
  if (dense_mode_) {
    // Delegate to the batch engine wholesale: in the dense regime there is
    // no grid work to repair, and running the identical code path is what
    // makes dense results trivially bit-identical.
    kinetic_metrics().dense.increment();
    const Box<D> box(side_);
    return Torus ? batch_.torus(points, side_) : batch_.euclidean(points, box);
  }

  moved_.clear();
  moved_flag_.assign(n_, 0);
  full_rebuild<Torus>(points, r0);
  return mst_;
}

template <int D>
template <bool Torus>
std::span<const WeightedEdge> KineticEmstEngine<D>::advance_impl(
    std::span<const Point<D>> points) {
  ++stats_.steps;
  kinetic_metrics().steps.increment();

  if (dense_mode_) {
    const Box<D> box(side_);
    return Torus ? batch_.torus(points, side_) : batch_.euclidean(points, box);
  }

  // Pass 1: exact moved-node detection against the previous step. The AoS
  // input is gathered into the cur_ SoA store once; the vectorized
  // tuple-compare kernel then writes the per-node flags (1 iff any
  // coordinate differs — the same `!(Point == Point)` predicate), and a
  // scalar sweep collects the mover ids in ascending order.
  cur_.assign(points);
  kernels::batch_tuple_not_equal<D>(cur_.axes(), prev_.axes(), n_, moved_flag_.data());
  moved_.clear();
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (moved_flag_[i] != 0) moved_.push_back(i);
  }
  stats_.last_moved = moved_.size();
  stats_.last_superseded = 0;
  stats_.last_delta = 0;
  if (moved_.empty()) return mst_;  // nothing moved: the tree is still exact

  // Pass 2: re-bin the nodes that crossed a cell boundary. (Harmless before
  // the mass-move decision below: a rebuild re-derives every bin anyway.)
  std::size_t crossings = 0;
  for (const std::uint32_t i : moved_) {
    const std::size_t new_cell = flat_index(cell_coords(points[i]));
    if (new_cell != cell_of_[i]) {
      cell_of_[i] = new_cell;
      ++crossings;
    }
  }
  stats_.boundary_crossings += crossings;

  if (static_cast<double>(moved_.size()) >
          kMassMoveFraction * static_cast<double>(n_) &&
      static_cast<double>(crossings) >
          kMassMoveFraction * static_cast<double>(moved_.size())) {
    // Mostly-new configuration (teleport-scale moves: most nodes changed
    // cell, so the maintained radius is stale too). When a mass move is
    // sub-cell — every node drifting a little, as in a mobility model's
    // start-up transient — the repair below stays cheaper than a rebuild:
    // it re-derives the same pairs from bins that barely changed, with no
    // grid reconstruction and no radius search. (No flag reset needed: pass
    // 1 rewrites every moved_flag_ entry next step.)
    ++stats_.mass_move_rebuilds;
    full_rebuild<Torus>(points, radius_);
    maybe_shrink<Torus>(points);
    return mst_;
  }

  // Counting-sort the bins into the flat snapshot pass 3 scans.
  build_cell_snapshot();

  // Pass 3: re-derive every current mover-incident pair within the radius,
  // one distance evaluation each. The pool entries these supersede are not
  // touched here — the merge below already streams the whole pool, and the
  // mover flags it tests live in an L1-resident byte array — so this scan
  // needs no entering-vs-surviving distinction either (the repair invariant
  // would make that an arithmetic test on the previous-step distance, but
  // not making it at all is cheaper still). The cell neighborhood of a
  // mover covers its radius ball, so the emitted set is exactly the pairs
  // the pool must regain. Pairs of two moved nodes are emitted once, from
  // the smaller id.
  changed_.clear();
  for (const std::uint32_t i : moved_) scan_mover<Torus>(i);
  stats_.last_delta = changed_.size();

  // Pass 4: sort the delta, then merge it with the surviving pool entries,
  // dropping everything mover-incident (the delta holds its replacements).
  // (d2, u, v) is a strict total order — (u, v) is unique per pair — so the
  // merged sequence equals the from-scratch sort bit for bit. Kruskal is
  // fused into the merge: every emitted candidate is offered to the forest
  // in order until the tree completes, which turns Kruskal's own full read
  // of the pool into reuse of values this loop already holds in registers.
  sort_candidates(changed_, r2_);
  merged_.resize(edges_.size() + changed_.size());  // upper bound; trimmed below
  dsu_.reset(n_);
  mst_.clear();
  std::size_t missing = n_ - 1;
  const auto offer = [&](const Candidate& c) {
    if (missing != 0 && dsu_.unite(c.u, c.v)) {
      mst_.push_back({c.u, c.v, covering_radius(c.d2)});
      --missing;
    }
  };
  std::size_t out = 0;
  std::size_t superseded = 0;
  const Candidate* delta = changed_.data();
  const Candidate* const delta_end = delta + changed_.size();
  for (const Candidate& c : edges_) {
    if ((moved_flag_[c.u] | moved_flag_[c.v]) != 0) {
      ++superseded;
      continue;
    }
    while (delta != delta_end &&
           candidate_less(delta->d2, delta->u, delta->v, c.d2, c.u, c.v)) {
      offer(*delta);
      merged_[out++] = *delta++;
    }
    offer(c);
    merged_[out++] = c;
  }
  while (delta != delta_end) {
    offer(*delta);
    merged_[out++] = *delta++;
  }
  merged_.resize(out);
  edges_.swap(merged_);
  stats_.last_superseded = superseded;
  stats_.candidate_edges = edges_.size();
  // Re-baseline: cur_ IS the current positions in SoA form, so the
  // prev-points update is an O(1) buffer swap (unmoved coordinates are equal
  // in both stores; cur_ is fully re-gathered next step). Flags need no
  // reset — pass 1 rewrites all of them.
  swap(prev_, cur_);

  // A non-spanning candidate graph violates the "radius covers the
  // bottleneck" assumption: grow batch-style.
  if (missing == 0) {
    ++stats_.incremental_repairs;
    kinetic_metrics().incremental.increment();
  } else {
    ++stats_.radius_growths;
    kinetic_metrics().growths.increment();
    full_rebuild<Torus>(points, radius_ * 2.0);
  }
  maybe_shrink<Torus>(points);
  return mst_;
}

template <int D>
std::span<const WeightedEdge> KineticEmstEngine<D>::start(std::span<const Point<D>> points,
                                                          const Box<D>& box) {
  return start_impl<false>(points, box.side());
}

template <int D>
std::span<const WeightedEdge> KineticEmstEngine<D>::start_torus(
    std::span<const Point<D>> points, double side) {
  return start_impl<true>(points, side);
}

template <int D>
std::span<const WeightedEdge> KineticEmstEngine<D>::advance(
    std::span<const Point<D>> points) {
  MANET_EXPECTS(started_);
  MANET_EXPECTS(points.size() == n_);
  return torus_ ? advance_impl<true>(points) : advance_impl<false>(points);
}

template class KineticEmstEngine<1>;
template class KineticEmstEngine<2>;
template class KineticEmstEngine<3>;

}  // namespace manet
