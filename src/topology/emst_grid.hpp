#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/cell_grid.hpp"
#include "geometry/point.hpp"
#include "graph/union_find.hpp"
#include "topology/mst.hpp"

namespace manet {

/// Starting radius of the adaptive doubling search: the connectivity
/// threshold scale l * (log n / n)^(1/D) of random geometric graphs. Shared
/// by the batch engine below and the kinetic engine
/// (topology/emst_kinetic.hpp) so both select the dense fallback — and start
/// their searches — on exactly the same inputs.
template <int D>
inline double emst_initial_radius(std::size_t n, double side) noexcept {
  const double frac = std::log(static_cast<double>(n)) / static_cast<double>(n);
  return side * std::pow(frac, 1.0 / static_cast<double>(D));
}

/// Per-solve diagnostics of the adaptive EMST engine, exposed for the perf
/// bench (bench/perf_mst.cpp) and the property tests.
struct EmstGridStats {
  std::size_t rounds = 0;           ///< adaptive doubling rounds taken (grid path)
  std::size_t candidate_edges = 0;  ///< edges enumerated in the final round
  double final_radius = 0.0;        ///< radius at which the candidate graph spanned
  bool dense_fallback = false;      ///< true when the dense Prim path was selected
};

/// Grid-accelerated Euclidean MST engine: a filtered-Kruskal over the
/// candidate edges enumerated by a CellGrid at an adaptive doubling radius.
///
/// The search starts near the expected connectivity threshold
/// l * (log n / n)^(1/D) (the critical-range scale of random geometric
/// graphs), runs Kruskal over the pairs within that radius, and doubles the
/// radius — rebinning the grid so the `radius <= cell_size` query
/// precondition keeps holding — until the candidate graph spans. Expected
/// cost is O(n log n) per solve instead of dense Prim's O(n^2); tiny inputs
/// (n < kDenseCutoff) and pathologically dense thresholds (initial radius a
/// large fraction of the region side) take the dense Prim fallback, which is
/// faster there and needs no grid.
///
/// VALUE IDENTITY: the returned tree has exactly the same edge-weight
/// multiset as the dense path (`mst_with_metric` in topology/mst.hpp) — all
/// minimum spanning trees of a graph share it — and weights go through the
/// same squared-distance + covering_radius arithmetic, so every quantity the
/// simulator derives from the tree (bottleneck / critical radius,
/// largest-component breakpoint curve, total weight) is bit-identical to the
/// dense result. The PR 2 golden MTRM checksums are the regression gate.
///
/// The engine is a reusable workspace: the grid, candidate buffer, union-find
/// and result tree all retain capacity across solves, so a hot loop (one
/// solve per mobility step) performs no steady-state heap allocations. It is
/// NOT thread-safe; use one engine per thread (see sim/trace_workspace.hpp).
template <int D>
class EmstEngine {
 public:
  /// n below which dense Prim beats building a grid.
  static constexpr std::size_t kDenseCutoff = 32;

  EmstEngine() = default;
  EmstEngine(const EmstEngine&) = delete;
  EmstEngine& operator=(const EmstEngine&) = delete;

  /// Euclidean MST of `points`, all of which must lie inside `box`. Returns
  /// n-1 edges sorted ascending by weight (empty for n <= 1), valid until
  /// the next call on this engine.
  std::span<const WeightedEdge> euclidean(std::span<const Point<D>> points, const Box<D>& box);

  /// MST under the flat-torus metric on [0, side]^D (geometry/torus.hpp).
  /// Same contract as `euclidean`; wrap-aware neighbor cells keep the grid
  /// acceleration exact across the region edges.
  std::span<const WeightedEdge> torus(std::span<const Point<D>> points, double side);

  /// The largest nearest-neighbor distance max_i min_{j != i} dist(i, j)
  /// (= isolation_range, topology/critical_range.hpp), via the same
  /// adaptive-radius grid machinery: a point's nearest neighbor found within
  /// the current radius is exact, so only points with no neighbor yet force
  /// a doubling round. Returns 0 for n <= 1.
  double max_nearest_neighbor_range(std::span<const Point<D>> points, const Box<D>& box);

  /// Diagnostics of the most recent solve.
  const EmstGridStats& stats() const noexcept { return stats_; }

 private:
  /// Candidate edge: squared distance first so the sort key is cache-local.
  struct Candidate {
    double d2;
    std::uint32_t u;
    std::uint32_t v;
  };

  template <bool Torus>
  std::span<const WeightedEdge> solve(std::span<const Point<D>> points, double side);

  template <bool Torus>
  void dense_prim(std::span<const Point<D>> points, double side);

  /// Starting radius of the doubling search: the connectivity threshold
  /// scale l * (log n / n)^(1/D).
  static double initial_radius(std::size_t n, double side);

  CellGrid<D> grid_;
  UnionFind dsu_{0};
  std::vector<Candidate> candidates_;
  std::vector<WeightedEdge> mst_;
  std::vector<double> nn2_;
  // Dense-fallback scratch (pooled so the fallback is allocation-free too).
  std::vector<double> best_d2_;
  std::vector<std::size_t> best_from_;
  std::vector<char> in_tree_;
  EmstGridStats stats_;
};

/// One-shot convenience: grid-accelerated EMST without managing an engine.
template <int D>
std::vector<WeightedEdge> grid_euclidean_mst(std::span<const Point<D>> points,
                                             const Box<D>& box) {
  EmstEngine<D> engine;
  const auto edges = engine.euclidean(points, box);
  return {edges.begin(), edges.end()};
}

/// One-shot convenience: grid-accelerated torus-metric MST.
template <int D>
std::vector<WeightedEdge> grid_torus_mst(std::span<const Point<D>> points, double side) {
  EmstEngine<D> engine;
  const auto edges = engine.torus(points, side);
  return {edges.begin(), edges.end()};
}

}  // namespace manet
