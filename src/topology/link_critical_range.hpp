#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "geometry/box.hpp"
#include "geometry/point.hpp"
#include "graph/link_model.hpp"
#include "support/error.hpp"
#include "topology/critical_range.hpp"

namespace manet {

/// Options of the bisection fallback in link_model_critical_range. The
/// search stops when the bracket width falls below
/// `relative_tolerance * (initial hi)` or after `max_iterations` halvings
/// (80 halvings of any double bracket reach 1 ulp, so the iteration cap is a
/// backstop, not the usual exit).
struct LinkRangeSearchOptions {
  double relative_tolerance = 1e-6;
  std::size_t max_iterations = 80;

  /// Throws ConfigError on out-of-domain values.
  void validate() const {
    if (!(relative_tolerance > 0.0)) {
      throw ConfigError("LinkRangeSearchOptions: relative_tolerance must be > 0");
    }
    if (max_iterations == 0) {
      throw ConfigError("LinkRangeSearchOptions: max_iterations must be >= 1");
    }
  }
};

/// Critical scale parameter of a deployment under an arbitrary link-model
/// family: the minimum r such that `family.at_range(r, n, fading_seed)`
/// makes the communication graph (strongly) connected.
///
/// The paper's exact argument — rc equals the bottleneck edge of the
/// Euclidean MST — holds only for the unit disk, where "edge at range r" is
/// a pure threshold on Euclidean distance. Families that declare
/// `exact_bottleneck()` take that exact path (bit-identical to
/// critical_range). Every other family falls back to deterministic
/// bisection, which is correct because connectivity stays *monotone in r*
/// even under random attenuation: the fading gains are a pure function of
/// (fading_seed, pair) — independent of r — so growing r only ever adds
/// links. The initial bracket is [0, box.diagonal() * family.hi_factor()],
/// connected by the family's hi_factor guarantee (checked).
///
/// Determinism: no randomness is drawn here; everything is keyed by
/// `fading_seed`, so the result is bit-identical at any thread count and
/// across repeated calls. Returns 0 for n <= 1 (vacuously connected).
template <int D>
double link_model_critical_range(std::span<const Point<D>> points, const Box<D>& box,
                                 const LinkModelFamily& family, std::uint64_t fading_seed,
                                 const LinkRangeSearchOptions& options = {}) {
  options.validate();
  if (points.size() <= 1) return 0.0;
  if (family.exact_bottleneck()) {
    return critical_range<D>(points, box);
  }

  const auto connected_at = [&](double r) {
    const auto model = family.at_range(r, points.size(), fading_seed);
    return analyze_link_components<D>(points, box, *model).strongly_connected();
  };

  double lo = 0.0;
  double hi = box.diagonal() * family.hi_factor();
  MANET_EXPECTS(hi > 0.0);
  // The hi_factor contract promises connectivity at the initial hi; a model
  // violating it would silently bisect toward a wrong answer, so check.
  MANET_EXPECTS(connected_at(hi));

  const double width_goal = options.relative_tolerance * hi;
  for (std::size_t iter = 0; iter < options.max_iterations && hi - lo > width_goal; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // bracket collapsed to adjacent doubles
    if (connected_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace manet
