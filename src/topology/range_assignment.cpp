#include "topology/range_assignment.hpp"

#include <algorithm>
#include <cmath>

namespace manet {

RangeAssignment::RangeAssignment(std::vector<double> ranges) : ranges_(std::move(ranges)) {
  // User-facing configuration boundary (ranges may come straight from CLI
  // input): ConfigError, not a contract — and NaN-safe via the negated form.
  for (double r : ranges_) {
    if (!(r >= 0.0)) throw ConfigError("RangeAssignment: every range must be >= 0");
  }
}

double RangeAssignment::range(std::size_t node) const {
  MANET_EXPECTS(node < ranges_.size());
  return ranges_[node];
}

double RangeAssignment::cost(double alpha) const {
  if (!(alpha >= 1.0)) throw ConfigError("RangeAssignment::cost: alpha must be >= 1");
  double total = 0.0;
  for (double r : ranges_) total += std::pow(r, alpha);
  return total;
}

double RangeAssignment::max_range() const {
  double max_r = 0.0;
  for (double r : ranges_) max_r = std::max(max_r, r);
  return max_r;
}

}  // namespace manet
