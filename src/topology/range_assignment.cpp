#include "topology/range_assignment.hpp"

#include <algorithm>
#include <cmath>

namespace manet {

RangeAssignment::RangeAssignment(std::vector<double> ranges) : ranges_(std::move(ranges)) {
  for (double r : ranges_) MANET_EXPECTS(r >= 0.0);
}

double RangeAssignment::range(std::size_t node) const {
  MANET_EXPECTS(node < ranges_.size());
  return ranges_[node];
}

double RangeAssignment::cost(double alpha) const {
  MANET_EXPECTS(alpha >= 1.0);
  double total = 0.0;
  for (double r : ranges_) total += std::pow(r, alpha);
  return total;
}

double RangeAssignment::max_range() const {
  double max_r = 0.0;
  for (double r : ranges_) max_r = std::max(max_r, r);
  return max_r;
}

}  // namespace manet
