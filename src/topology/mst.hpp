#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "geometry/point.hpp"
#include "support/error.hpp"

namespace manet {

/// An undirected edge weighted by Euclidean distance.
struct WeightedEdge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 0.0;
};

/// Minimum spanning tree under an arbitrary squared-distance metric, via
/// dense Prim's algorithm: O(n^2) metric evaluations, O(n) space, no edge
/// materialization. This is the reference implementation and the fallback
/// of the grid-accelerated engine (topology/emst_grid.hpp), which selects
/// it for tiny inputs (n < EmstEngine::kDenseCutoff) and for densities
/// where the connectivity-threshold radius is so large a fraction of the
/// region that a spatial grid cannot prune pairs. Hot paths (the mobile
/// step loop, stationary sampling) go through EmstEngine, whose output is
/// value-identical to this function; dense Prim additionally supports
/// arbitrary metrics and points outside any deployment box.
///
/// `squared_dist` is any symmetric non-negative function of two points (the
/// Euclidean and torus metrics are the shipped instances). Returns n-1
/// edges (empty for n <= 1), weighted by covering_radius(squared_dist), in
/// the order Prim's algorithm adds them (not sorted by weight).
template <int D, typename SquaredDistFn>
std::vector<WeightedEdge> mst_with_metric(std::span<const Point<D>> points,
                                          SquaredDistFn&& squared_dist) {
  std::vector<WeightedEdge> mst;
  const std::size_t n = points.size();
  if (n <= 1) return mst;
  mst.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_dist2(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<bool> in_tree(n, false);

  std::size_t current = 0;
  in_tree[0] = true;
  for (std::size_t added = 1; added < n; ++added) {
    // Relax distances against the vertex added last.
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d2 = squared_dist(points[current], points[v]);
      if (d2 < best_dist2[v]) {
        best_dist2[v] = d2;
        best_from[v] = current;
      }
    }
    // Pick the closest fringe vertex.
    std::size_t next = n;
    double next_d2 = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best_dist2[v] < next_d2) {
        next_d2 = best_dist2[v];
        next = v;
      }
    }
    MANET_ENSURES(next < n);
    in_tree[next] = true;
    mst.push_back({best_from[next], next, covering_radius(next_d2)});
    current = next;
  }
  return mst;
}

/// Euclidean minimum spanning tree (the library's default metric).
template <int D>
std::vector<WeightedEdge> euclidean_mst(std::span<const Point<D>> points) {
  return mst_with_metric(points,
                         [](const Point<D>& a, const Point<D>& b) {
                           return squared_distance(a, b);
                         });
}

/// The largest edge weight of a spanning tree — for an MST this is the
/// bottleneck: the minimum transmitting range making the point graph
/// connected. Returns 0 for trees with no edges (n <= 1: vacuously
/// connected at any range).
double tree_bottleneck(std::span<const WeightedEdge> tree);

/// Total weight of a tree (sum of edge weights).
double tree_total_weight(std::span<const WeightedEdge> tree);

}  // namespace manet
