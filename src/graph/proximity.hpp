#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/cell_grid.hpp"
#include "geometry/point.hpp"
#include "graph/adjacency.hpp"
#include "graph/union_find.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

/// Structural summary of a communication graph: everything the paper's
/// simulator reports per generated graph ("the percentage of connected
/// graphs, the average size of the largest connected component, ...") plus
/// the isolated-node census behind its observation that "disconnection is
/// caused by only a few isolated nodes", plus — since the LinkModel seam
/// (graph/link_model.hpp) admits directed communication graphs — a strongly-
/// connected-component census.
///
/// Empty-deployment semantics (n == 0), pinned by tests/proximity_test.cpp
/// and tests/link_model_test.cpp: `component_count`, `largest_size`,
/// `isolated_count`, `scc_count` and `largest_scc_size` are all 0;
/// `connected()` / `strongly_connected()` are vacuously true; and
/// `largest_fraction()` is defined as 1.0. Callers that divide by
/// `component_count` or index by `largest_size` must branch on
/// `node_count == 0` first — the public sim/ and core/ entry points reject
/// empty deployments with ConfigError instead (see sim/snapshot_stats.hpp).
struct ComponentSummary {
  std::size_t node_count = 0;
  std::size_t component_count = 0;
  std::size_t largest_size = 0;
  std::size_t isolated_count = 0;
  /// Directed census. For symmetric link models (and this header's
  /// unit-disk analyses) strong and weak connectivity coincide, so these
  /// mirror component_count / largest_size. For directed models
  /// (graph/link_model.hpp) they are computed from the arc set via
  /// graph/scc.hpp, while the undirected fields above describe the
  /// bidirectional (symmetric-closure) subgraph.
  std::size_t scc_count = 0;
  std::size_t largest_scc_size = 0;

  /// A graph on zero or one nodes is vacuously connected.
  bool connected() const noexcept { return component_count <= 1; }

  /// "Connected" generalized to directed communication graphs: every
  /// ordered pair of nodes can route to each other. Equals connected() for
  /// symmetric models; vacuously true on zero or one nodes.
  bool strongly_connected() const noexcept { return scc_count <= 1; }

  /// Largest component size as a fraction of n (1.0 for empty graphs).
  double largest_fraction() const noexcept {
    if (node_count == 0) return 1.0;
    return static_cast<double>(largest_size) / static_cast<double>(node_count);
  }
};

/// Enumerates the edges of the communication graph under the paper's
/// point-graph / unit-disk link rule: (u, v) is an edge iff the Euclidean
/// distance between u and v is at most `radius` (common transmitting range
/// r). This is the *default* link rule, not the only one: the LinkModel seam
/// (graph/link_model.hpp) generalizes graph construction to log-normal
/// shadowing and heterogeneous per-node ranges, and its UnitDiskLinkModel is
/// pinned bit-identical to this function by tests/link_model_test.cpp.
template <int D>
std::vector<std::pair<std::size_t, std::size_t>> proximity_edges(
    std::span<const Point<D>> points, const Box<D>& box, double radius) {
  MANET_EXPECTS(radius > 0.0);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (points.size() < 2) return edges;
  const CellGrid<D> grid(points, box, radius);
  grid.for_each_pair_within(radius,
                            [&](std::size_t i, std::size_t j, double) { edges.emplace_back(i, j); });
  return edges;
}

/// Builds the full CSR communication graph (needed when per-node degrees or
/// hop distances are required, e.g. by the examples and metrics).
template <int D>
AdjacencyGraph build_communication_graph(std::span<const Point<D>> points, const Box<D>& box,
                                         double radius) {
  const auto edges = proximity_edges(points, box, radius);
  return AdjacencyGraph(points.size(), edges);
}

/// Computes connectivity structure without materializing the graph: a single
/// grid sweep feeding a union-find plus a degree census. This is the hot path
/// of the mobile simulator (one call per mobility step per candidate range).
template <int D>
ComponentSummary analyze_components(std::span<const Point<D>> points, const Box<D>& box,
                                    double radius) {
  MANET_EXPECTS(radius > 0.0);
  ComponentSummary summary;
  summary.node_count = points.size();
  if (points.empty()) return summary;

  UnionFind dsu(points.size());
  std::vector<std::size_t> degree(points.size(), 0);
  const CellGrid<D> grid(points, box, radius);
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double) {
    dsu.unite(i, j);
    ++degree[i];
    ++degree[j];
  });

  summary.component_count = dsu.component_count();
  summary.largest_size = dsu.largest_component_size();
  // Unit-disk graphs are undirected, so the strong census coincides with the
  // weak one (same convention the symmetric LinkModel analyses use).
  summary.scc_count = summary.component_count;
  summary.largest_scc_size = summary.largest_size;
  for (std::size_t d : degree) {
    if (d == 0) ++summary.isolated_count;
  }
  MANET_ENSURE(summary.largest_size >= 1 && summary.largest_size <= summary.node_count);
  MANET_ENSURE(summary.component_count >= 1 && summary.component_count <= summary.node_count);
  MANET_ENSURE(summary.isolated_count <= summary.node_count);
  return summary;
}

}  // namespace manet
