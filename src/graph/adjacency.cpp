#include "graph/adjacency.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

AdjacencyGraph::AdjacencyGraph(std::size_t n,
                               std::span<const std::pair<std::size_t, std::size_t>> edges)
    : offsets_(n + 1, 0) {
  for (const auto& [u, v] : edges) {
    MANET_EXPECTS(u < n && v < n);
    MANET_EXPECTS(u != v);
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];

  neighbors_.resize(2 * edges.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors_[cursor[u]++] = v;
    neighbors_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v) {
    auto begin = neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto end = neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(begin, end);
    MANET_EXPECTS(std::adjacent_find(begin, end) == end);  // no parallel edges
  }
  MANET_INVARIANT(is_symmetric());
}

bool AdjacencyGraph::is_symmetric() const {
  // Undirected-graph invariant: w in N(v) iff v in N(w). Every connectivity
  // metric (BFS distances, components, diameter) silently assumes this.
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    for (std::size_t w : neighbors(v)) {
      const auto back = neighbors(w);
      if (!std::binary_search(back.begin(), back.end(), v)) return false;
    }
  }
  return true;
}

std::span<const std::size_t> AdjacencyGraph::neighbors(std::size_t v) const {
  MANET_EXPECTS(v + 1 < offsets_.size());
  return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t AdjacencyGraph::degree(std::size_t v) const {
  MANET_EXPECTS(v + 1 < offsets_.size());
  return offsets_[v + 1] - offsets_[v];
}

std::vector<std::size_t> bfs_distances(const AdjacencyGraph& graph, std::size_t source) {
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  MANET_EXPECTS(source < graph.vertex_count());

  std::vector<std::size_t> dist(graph.vertex_count(), kUnreached);
  std::queue<std::size_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (std::size_t w : graph.neighbors(v)) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

std::size_t reachable_count(const AdjacencyGraph& graph, std::size_t source) {
  const auto dist = bfs_distances(graph, source);
  return static_cast<std::size_t>(
      std::count_if(dist.begin(), dist.end(), [](std::size_t d) {
        return d != std::numeric_limits<std::size_t>::max();
      }));
}

std::size_t eccentricity(const AdjacencyGraph& graph, std::size_t source) {
  const auto dist = bfs_distances(graph, source);
  std::size_t ecc = 0;
  for (std::size_t d : dist) {
    if (d != std::numeric_limits<std::size_t>::max()) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::size_t component_diameter(const AdjacencyGraph& graph, std::size_t source) {
  const auto dist = bfs_distances(graph, source);
  std::size_t diameter = 0;
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    if (dist[v] != std::numeric_limits<std::size_t>::max()) {
      diameter = std::max(diameter, eccentricity(graph, v));
    }
  }
  return diameter;
}

}  // namespace manet
