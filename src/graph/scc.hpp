#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace manet {

/// A directed communication link `from -> to`: `from` can reach `to` at its
/// own transmitting range, but not necessarily vice versa. Directed graphs
/// arise as soon as per-node ranges differ (graph/link_model.hpp); the
/// symmetric point-graph model of the paper is the special case where every
/// arc's reverse is present.
struct DirectedEdge {
  std::size_t from = 0;
  std::size_t to = 0;

  friend constexpr bool operator==(const DirectedEdge&, const DirectedEdge&) = default;
};

/// Partition of the vertices [0, n) of a directed graph into strongly
/// connected components: u and v share a component iff each can reach the
/// other along directed arcs. For directed communication graphs this is the
/// meaningful generalization of "connected" — a strongly connected network
/// can route between every ordered pair of nodes.
struct SccPartition {
  /// Component id of every vertex, in [0, component_count). Ids are assigned
  /// in the deterministic order Tarjan's algorithm completes components
  /// (a reverse topological order of the condensation).
  std::vector<std::size_t> component_of;
  std::size_t component_count = 0;
  /// Number of vertices in the largest component (0 for the empty graph).
  std::size_t largest_size = 0;

  /// A graph on zero or one vertices is vacuously strongly connected,
  /// mirroring ComponentSummary::connected().
  bool strongly_connected() const noexcept { return component_count <= 1; }
};

/// Computes the strongly connected components of the directed graph on
/// vertices [0, n) with the given arcs (parallel arcs and self-loops are
/// permitted and have no effect beyond their reachability contribution).
/// Iterative Tarjan: O(n + m) time, deterministic component numbering for a
/// fixed arc order, no recursion (safe for adversarially deep graphs).
/// Requires every endpoint < n.
SccPartition strongly_connected_components(std::size_t n, std::span<const DirectedEdge> arcs);

}  // namespace manet
