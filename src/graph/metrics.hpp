#pragma once

#include <cstddef>
#include <vector>

#include "graph/adjacency.hpp"

namespace manet {

/// Degree statistics of a communication graph. The minimum degree upper-
/// bounds connectivity (an isolated node — degree 0 — disconnects the graph,
/// the disconnection mode analysed in [11] and refined by this paper).
struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t isolated_count = 0;
};

DegreeStats degree_stats(const AdjacencyGraph& graph);

/// Histogram of vertex degrees: index d holds the number of vertices with
/// degree d.
std::vector<std::size_t> degree_histogram(const AdjacencyGraph& graph);

/// Sizes of all connected components, descending.
std::vector<std::size_t> component_sizes(const AdjacencyGraph& graph);

}  // namespace manet
