#include "graph/union_find.hpp"

#include <numeric>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  size_.assign(n, 1);
  components_ = n;
  largest_ = n > 0 ? 1 : 0;
}

std::size_t UnionFind::find(std::size_t x) {
  MANET_EXPECTS(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (size_[ra] > largest_) largest_ = size_[ra];
  --components_;
  // Size bookkeeping stays consistent: the merged root's size cannot exceed
  // the universe, the cached largest component tracks it, and a non-empty
  // structure always has at least one component.
  MANET_INVARIANT(size_[ra] <= parent_.size());
  MANET_INVARIANT(largest_ >= size_[ra]);
  MANET_INVARIANT(components_ >= 1);
  return true;
}

std::size_t UnionFind::component_size(std::size_t x) { return size_[find(x)]; }

}  // namespace manet
