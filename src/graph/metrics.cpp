#include "graph/metrics.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/contracts.hpp"

namespace manet {

DegreeStats degree_stats(const AdjacencyGraph& graph) {
  DegreeStats stats;
  const std::size_t n = graph.vertex_count();
  if (n == 0) return stats;

  stats.min_degree = std::numeric_limits<std::size_t>::max();
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t d = graph.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    total += d;
    if (d == 0) ++stats.isolated_count;
  }
  stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

std::vector<std::size_t> degree_histogram(const AdjacencyGraph& graph) {
  std::vector<std::size_t> hist;
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    const std::size_t d = graph.degree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

std::vector<std::size_t> component_sizes(const AdjacencyGraph& graph) {
  const std::size_t n = graph.vertex_count();
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> sizes;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    std::size_t size = 0;
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      ++size;
      for (std::size_t w : graph.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      }
    }
    sizes.push_back(size);
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  // The components partition the vertex set.
  MANET_ENSURE(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}) == n);
  return sizes;
}

}  // namespace manet
