#include "graph/link_model.hpp"

#include <algorithm>
#include <cmath>

namespace manet {

// ---------------------------------------------------------------------------
// UnitDiskLinkModel
// ---------------------------------------------------------------------------

UnitDiskLinkModel::UnitDiskLinkModel(double radius) : radius_(radius) {
  if (!(radius > 0.0)) {
    throw ConfigError("UnitDiskLinkModel: radius must be > 0");
  }
}

// ---------------------------------------------------------------------------
// ShadowingLinkModel
// ---------------------------------------------------------------------------

void ShadowingParams::validate() const {
  if (!(reference_range > 0.0)) {
    throw ConfigError("ShadowingParams: reference_range must be > 0");
  }
  if (!(sigma_db >= 0.0)) {
    throw ConfigError("ShadowingParams: sigma_db must be >= 0");
  }
  if (!(path_loss_exponent > 0.0)) {
    throw ConfigError("ShadowingParams: path_loss_exponent must be > 0");
  }
  if (!(z_clip > 0.0)) {
    throw ConfigError("ShadowingParams: z_clip must be > 0");
  }
}

double ShadowingParams::max_gain_factor() const {
  return std::pow(10.0, sigma_db * z_clip / (10.0 * path_loss_exponent));
}

ShadowingLinkModel::ShadowingLinkModel(const ShadowingParams& params) : params_(params) {
  params_.validate();
  max_link_distance_ = params_.reference_range * params_.max_gain_factor();
}

double ShadowingLinkModel::pair_gain(std::size_t u, std::size_t v) const {
  if (params_.sigma_db == 0.0) return 1.0;  // exact unit-disk degeneration
  const std::uint64_t lo = std::min(u, v);
  const std::uint64_t hi = std::max(u, v);
  // Pure function of (seed, unordered pair): nested substreams mean pair
  // (a, b) and pair (a, c) draw from decorrelated streams, and enumeration
  // order / thread count cannot affect the value.
  Rng pair_rng(substream_seed(substream_seed(params_.fading_seed, lo), hi));
  const double z = std::clamp(pair_rng.normal(), -params_.z_clip, params_.z_clip);
  return std::pow(10.0, params_.sigma_db * z / (10.0 * params_.path_loss_exponent));
}

// ---------------------------------------------------------------------------
// HeterogeneousRangeLinkModel
// ---------------------------------------------------------------------------

HeterogeneousRangeLinkModel::HeterogeneousRangeLinkModel(RangeAssignment assignment)
    : assignment_(std::move(assignment)), max_range_(assignment_.max_range()) {}

bool HeterogeneousRangeLinkModel::symmetric_link(std::size_t u, std::size_t v,
                                                 double dist2) const {
  // Bidirectional closure: both directions exist iff dist <= min(r_u, r_v),
  // the RangeAssignment symmetric-graph rule (same `<=` in squared space).
  const double allowed = std::min(assignment_.range(u), assignment_.range(v));
  return dist2 <= allowed * allowed;
}

void HeterogeneousRangeLinkModel::directed_link(std::size_t u, std::size_t v, double dist2,
                                                bool& u_to_v, bool& v_to_u) const {
  const double r_u = assignment_.range(u);
  const double r_v = assignment_.range(v);
  u_to_v = dist2 <= r_u * r_u;
  v_to_u = dist2 <= r_v * r_v;
}

void HeterogeneousRangeLinkModel::validate_for(std::size_t node_count) const {
  if (node_count != assignment_.node_count()) {
    throw ConfigError("HeterogeneousRangeLinkModel: deployment size does not match the "
                      "range assignment's node count");
  }
}

// ---------------------------------------------------------------------------
// Families
// ---------------------------------------------------------------------------

namespace {

void require_positive_range(double range, const char* family) {
  if (!(range > 0.0)) {
    throw ConfigError(std::string(family) + " family: range must be > 0");
  }
}

}  // namespace

std::unique_ptr<LinkModel> UnitDiskLinkFamily::at_range(double range, std::size_t,
                                                        std::uint64_t) const {
  require_positive_range(range, name());
  return std::make_unique<UnitDiskLinkModel>(range);
}

ShadowingLinkFamily::ShadowingLinkFamily(ShadowingParams base) : base_(base) {
  base_.reference_range = 1.0;  // overridden per at_range call; keep valid
  base_.validate();
}

std::unique_ptr<LinkModel> ShadowingLinkFamily::at_range(double range, std::size_t,
                                                         std::uint64_t fading_seed) const {
  require_positive_range(range, name());
  ShadowingParams params = base_;
  params.reference_range = range;
  params.fading_seed = fading_seed;
  return std::make_unique<ShadowingLinkModel>(params);
}

double ShadowingLinkFamily::hi_factor() const noexcept {
  // Worst case: every pair fades at the deepest truncated attenuation
  // (gain = 1 / max_gain_factor), so scaling the diagonal by its reciprocal
  // guarantees even the unluckiest pair spans the region.
  return base_.max_gain_factor();
}

HeterogeneousRangeLinkFamily::HeterogeneousRangeLinkFamily(double min_factor,
                                                           double max_factor)
    : min_factor_(min_factor), max_factor_(max_factor) {
  if (!(min_factor > 0.0)) {
    throw ConfigError("HeterogeneousRangeLinkFamily: min_factor must be > 0");
  }
  if (!(max_factor >= min_factor)) {
    throw ConfigError("HeterogeneousRangeLinkFamily: max_factor must be >= min_factor");
  }
}

std::unique_ptr<LinkModel> HeterogeneousRangeLinkFamily::at_range(
    double range, std::size_t node_count, std::uint64_t fading_seed) const {
  require_positive_range(range, name());
  std::vector<double> ranges(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    // Per-node factor from the substream (fading_seed, i): pure in the node
    // id, so the assignment is identical at any thread count.
    Rng node_rng = substream(fading_seed, i);
    const double f = min_factor_ + (max_factor_ - min_factor_) * node_rng.uniform();
    ranges[i] = range * f;
  }
  return std::make_unique<HeterogeneousRangeLinkModel>(RangeAssignment(std::move(ranges)));
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const std::vector<std::string>& link_model_family_names() {
  static const std::vector<std::string> kNames = {"unit-disk", "shadowing", "heterogeneous"};
  return kNames;
}

std::unique_ptr<LinkModelFamily> make_link_model_family(const std::string& name,
                                                        const LinkModelMenu& menu) {
  if (name == "unit-disk") {
    return std::make_unique<UnitDiskLinkFamily>();
  }
  if (name == "shadowing") {
    return std::make_unique<ShadowingLinkFamily>(menu.shadowing);
  }
  if (name == "heterogeneous") {
    return std::make_unique<HeterogeneousRangeLinkFamily>(menu.min_range_factor,
                                                          menu.max_range_factor);
  }
  throw ConfigError("unknown link model '" + name +
                    "' (expected unit-disk, shadowing or heterogeneous)");
}

}  // namespace manet
