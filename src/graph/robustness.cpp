#include "graph/robustness.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace manet {
namespace {

constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

/// Iterative Tarjan DFS computing discovery times and low-links; collects
/// articulation points and/or bridges.
struct LowLinkDfs {
  const AdjacencyGraph& graph;
  std::vector<std::size_t> discovery;
  std::vector<std::size_t> low;
  std::vector<std::size_t> parent;
  std::vector<bool> is_articulation;
  std::vector<std::pair<std::size_t, std::size_t>> bridge_edges;
  std::size_t clock = 0;

  explicit LowLinkDfs(const AdjacencyGraph& g)
      : graph(g),
        discovery(g.vertex_count(), kUnvisited),
        low(g.vertex_count(), 0),
        parent(g.vertex_count(), kUnvisited),
        is_articulation(g.vertex_count(), false) {}

  void run() {
    for (std::size_t root = 0; root < graph.vertex_count(); ++root) {
      if (discovery[root] == kUnvisited) visit_component(root);
    }
  }

 private:
  struct Frame {
    std::size_t vertex;
    std::size_t next_neighbor_index;
  };

  void visit_component(std::size_t root) {
    std::vector<Frame> stack;
    std::size_t root_children = 0;

    discovery[root] = low[root] = clock++;
    stack.push_back({root, 0});

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::size_t v = frame.vertex;
      const auto neighbors = graph.neighbors(v);

      if (frame.next_neighbor_index < neighbors.size()) {
        const std::size_t w = neighbors[frame.next_neighbor_index++];
        if (discovery[w] == kUnvisited) {
          parent[w] = v;
          if (v == root) ++root_children;
          discovery[w] = low[w] = clock++;
          stack.push_back({w, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], discovery[w]);
        }
        continue;
      }

      // All neighbors of v processed: propagate the low-link to the parent
      // and apply the articulation / bridge criteria.
      stack.pop_back();
      if (parent[v] != kUnvisited) {
        const std::size_t p = parent[v];
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= discovery[p] && p != root) is_articulation[p] = true;
        if (low[v] > discovery[p]) {
          bridge_edges.emplace_back(std::min(p, v), std::max(p, v));
        }
      }
    }

    // Root rule: the DFS root is an articulation point iff it has more
    // than one DFS child.
    is_articulation[root] = root_children > 1;
  }
};

}  // namespace

std::vector<std::size_t> articulation_points(const AdjacencyGraph& graph) {
  LowLinkDfs dfs(graph);
  dfs.run();
  std::vector<std::size_t> points;
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    if (dfs.is_articulation[v]) points.push_back(v);
  }
  return points;
}

std::vector<std::pair<std::size_t, std::size_t>> bridges(const AdjacencyGraph& graph) {
  LowLinkDfs dfs(graph);
  dfs.run();
  std::sort(dfs.bridge_edges.begin(), dfs.bridge_edges.end());
  return dfs.bridge_edges;
}

bool survives_any_single_failure(const AdjacencyGraph& graph) {
  const std::size_t n = graph.vertex_count();
  if (n <= 1) return true;
  if (reachable_count(graph, 0) != n) return false;
  if (n == 2) return true;  // removing either leaves a single (connected) node
  return articulation_points(graph).empty();
}

FailureReport inject_failures(const AdjacencyGraph& graph,
                              const std::vector<std::size_t>& failure_order) {
  const std::size_t n = graph.vertex_count();
  std::vector<bool> failed(n, false);
  for (std::size_t v : failure_order) {
    MANET_EXPECTS(v < n);
    MANET_EXPECTS(!failed[v]);
    failed[v] = true;
  }

  FailureReport report;
  report.failures_injected = failure_order.size();

  // Recompute survivor connectivity after each removal. O(f * (V + E)) —
  // fine for the simulated network sizes.
  const auto survivors_summary = [&](const std::vector<bool>& down) {
    std::size_t survivor_count = 0;
    std::size_t first_survivor = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!down[v]) {
        ++survivor_count;
        if (first_survivor == n) first_survivor = v;
      }
    }
    if (survivor_count == 0) return std::pair<bool, double>{true, 1.0};

    // BFS over survivors from the first one.
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> queue = {first_survivor};
    visited[first_survivor] = true;
    std::size_t reached = 0;
    while (!queue.empty()) {
      const std::size_t v = queue.back();
      queue.pop_back();
      ++reached;
      for (std::size_t w : graph.neighbors(v)) {
        if (!down[w] && !visited[w]) {
          visited[w] = true;
          queue.push_back(w);
        }
      }
    }
    // Largest-fraction approximation from the first component is exact for
    // the connectivity question; for the fraction we take the largest
    // component over all survivor components.
    std::size_t largest = reached;
    for (std::size_t v = 0; v < n; ++v) {
      if (!down[v] && !visited[v]) {
        std::size_t size = 0;
        std::vector<std::size_t> inner = {v};
        visited[v] = true;
        while (!inner.empty()) {
          const std::size_t x = inner.back();
          inner.pop_back();
          ++size;
          for (std::size_t w : graph.neighbors(x)) {
            if (!down[w] && !visited[w]) {
              visited[w] = true;
              inner.push_back(w);
            }
          }
        }
        largest = std::max(largest, size);
      }
    }
    const bool connected = reached == survivor_count;
    return std::pair<bool, double>{connected,
                                   static_cast<double>(largest) /
                                       static_cast<double>(survivor_count)};
  };

  std::vector<bool> down(n, false);
  bool disconnected_seen = false;
  report.failures_survived = failure_order.size();
  for (std::size_t i = 0; i < failure_order.size(); ++i) {
    down[failure_order[i]] = true;
    const auto [connected, fraction] = survivors_summary(down);
    if (!connected && !disconnected_seen) {
      disconnected_seen = true;
      report.failures_survived = i;  // survived i removals, the (i+1)-th broke it
    }
    if (i + 1 == failure_order.size()) report.final_largest_fraction = fraction;
  }
  return report;
}

}  // namespace manet
