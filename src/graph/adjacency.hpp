#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace manet {

/// Immutable undirected graph in compressed-sparse-row form. Built once from
/// an edge list; neighbor enumeration is a contiguous scan, which keeps BFS
/// over thousands of simulated communication graphs cheap.
class AdjacencyGraph {
 public:
  /// Builds from undirected edges over vertices [0, n). Parallel edges and
  /// self-loops are rejected via precondition checks.
  AdjacencyGraph(std::size_t n, std::span<const std::pair<std::size_t, std::size_t>> edges);

  std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }
  std::size_t edge_count() const noexcept { return neighbors_.size() / 2; }

  /// Neighbors of v in ascending order.
  std::span<const std::size_t> neighbors(std::size_t v) const;

  std::size_t degree(std::size_t v) const;

  /// True when for every edge (v, w) the reverse (w, v) is present — the
  /// undirected-graph invariant. O(E log deg); checked automatically at
  /// construction in contract-enabled builds.
  bool is_symmetric() const;

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> neighbors_;
};

/// Breadth-first search from `source`; returns the hop distance to every
/// vertex (SIZE_MAX for unreachable vertices).
std::vector<std::size_t> bfs_distances(const AdjacencyGraph& graph, std::size_t source);

/// Number of vertices reachable from `source` (including itself).
std::size_t reachable_count(const AdjacencyGraph& graph, std::size_t source);

/// Longest shortest-path (in hops) within `source`'s component.
std::size_t eccentricity(const AdjacencyGraph& graph, std::size_t source);

/// Diameter in hops of the component containing `source` (exact, via BFS from
/// every vertex of that component).
std::size_t component_diameter(const AdjacencyGraph& graph, std::size_t source);

}  // namespace manet
