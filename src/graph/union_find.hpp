#pragma once

#include <cstddef>
#include <vector>

namespace manet {

/// Disjoint-set forest with union by size and path halving. Tracks the number
/// of components and the size of the largest one incrementally, which is
/// exactly what the connectivity observers need after each batch of edge
/// insertions.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Resets to n singleton components (reusing storage).
  void reset(std::size_t n);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's component. Requires x < size().
  std::size_t find(std::size_t x);

  /// Merges the components of a and b; returns true when they were distinct.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of elements in x's component.
  std::size_t component_size(std::size_t x);

  std::size_t component_count() const noexcept { return components_; }

  /// Size of the largest component (0 for an empty structure).
  std::size_t largest_component_size() const noexcept { return largest_; }

  /// True when every element is in one component (vacuously true for n <= 1).
  bool all_connected() const noexcept { return components_ <= 1; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
  std::size_t largest_ = 0;
};

}  // namespace manet
