#include "graph/scc.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace manet {
namespace {

constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

}  // namespace

SccPartition strongly_connected_components(std::size_t n,
                                           std::span<const DirectedEdge> arcs) {
  for (const DirectedEdge& arc : arcs) {
    MANET_EXPECTS(arc.from < n && arc.to < n);
  }

  SccPartition result;
  result.component_of.assign(n, 0);
  if (n == 0) return result;

  // CSR out-adjacency via counting sort by source: deterministic neighbor
  // order (arc order within a source is preserved), no per-vertex vectors.
  std::vector<std::size_t> head(n + 1, 0);
  for (const DirectedEdge& arc : arcs) ++head[arc.from + 1];
  for (std::size_t v = 1; v <= n; ++v) head[v] += head[v - 1];
  std::vector<std::size_t> targets(arcs.size());
  {
    std::vector<std::size_t> cursor(head.begin(), head.end() - 1);
    for (const DirectedEdge& arc : arcs) targets[cursor[arc.from]++] = arc.to;
  }

  // Iterative Tarjan. `index` doubles as the visitation mark; `on_stack` is
  // tracked with a byte vector rather than set lookups.
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<unsigned char> on_stack(n, 0);
  std::vector<std::size_t> stack;          // Tarjan's component stack
  std::vector<std::size_t> call_vertex;    // explicit DFS stack: vertex ...
  std::vector<std::size_t> call_edge;      // ... and its next out-edge cursor
  stack.reserve(n);
  call_vertex.reserve(n);
  call_edge.reserve(n);

  std::size_t next_index = 0;
  std::size_t largest = 0;
  std::size_t components = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_vertex.push_back(root);
    call_edge.push_back(head[root]);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!call_vertex.empty()) {
      const std::size_t v = call_vertex.back();
      std::size_t& cursor = call_edge.back();
      if (cursor < head[v + 1]) {
        const std::size_t w = targets[cursor++];
        if (index[w] == kUnvisited) {
          call_vertex.push_back(w);
          call_edge.push_back(head[w]);
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }

      // All out-edges of v explored: close v, then propagate its lowlink to
      // the DFS parent (the new stack top).
      if (lowlink[v] == index[v]) {
        std::size_t size = 0;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.component_of[w] = components;
          ++size;
          if (w == v) break;
        }
        largest = std::max(largest, size);
        ++components;
      }
      call_vertex.pop_back();
      call_edge.pop_back();
      if (!call_vertex.empty()) {
        const std::size_t parent = call_vertex.back();
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }

  result.component_count = components;
  result.largest_size = largest;
  MANET_ENSURE(components >= 1 && components <= n);
  MANET_ENSURE(largest >= 1 && largest <= n);
  MANET_ENSURE(stack.empty());
  return result;
}

}  // namespace manet
