#pragma once

#include <cstddef>
#include <vector>

#include "graph/adjacency.hpp"

namespace manet {

/// Structural-robustness analysis of communication graphs, supporting the
/// dependability view of Section 1: a connected network whose connectivity
/// hangs on one node (an articulation point) or one link (a bridge) is "up"
/// but fragile. These are computed with Tarjan's linear-time DFS low-link
/// algorithm.

/// Vertices whose removal increases the number of connected components.
std::vector<std::size_t> articulation_points(const AdjacencyGraph& graph);

/// Edges whose removal increases the number of connected components,
/// returned with u < v.
std::vector<std::pair<std::size_t, std::size_t>> bridges(const AdjacencyGraph& graph);

/// True iff the graph is connected and has no articulation point (i.e. it
/// is biconnected — survives any single node failure). Graphs with fewer
/// than 3 vertices: connected <=> every node sees every other.
bool survives_any_single_failure(const AdjacencyGraph& graph);

/// Summary of a failure-injection run: nodes are removed one at a time and
/// the remaining graph's connectivity is tracked.
struct FailureReport {
  /// Number of removals applied.
  std::size_t failures_injected = 0;
  /// Removals survived before the *remaining* nodes first became
  /// disconnected (equal to failures_injected when never disconnected).
  std::size_t failures_survived = 0;
  /// Largest-component fraction of the survivors after all removals.
  double final_largest_fraction = 1.0;
};

/// Removes the vertices in `failure_order` (a sequence of distinct vertex
/// ids) one at a time from the graph and reports when the survivors first
/// disconnect. The tolerance of random node loss is the dependability
/// counterpart of the paper's "network is functional if a given fraction of
/// nodes are connected".
FailureReport inject_failures(const AdjacencyGraph& graph,
                              const std::vector<std::size_t>& failure_order);

}  // namespace manet
