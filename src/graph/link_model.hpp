#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/cell_grid.hpp"
#include "geometry/point.hpp"
#include "graph/adjacency.hpp"
#include "graph/proximity.hpp"
#include "graph/scc.hpp"
#include "graph/union_find.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/range_assignment.hpp"

namespace manet {

/// Whether a link rule is symmetric (u <-> v decided jointly) or directed
/// (u -> v and v -> u decided separately, e.g. under per-node ranges).
enum class LinkSymmetry { kSymmetric, kDirected };

/// The link-rule seam of the graph layer (ROADMAP item 3; DESIGN.md §17).
///
/// Every connectivity analysis in the library historically hard-coded the
/// paper's symmetric unit-disk rule `edge iff dist(u, v) <= r`. A LinkModel
/// generalizes that decision: given a candidate pair and its squared
/// Euclidean distance, it decides whether the link exists — symmetrically,
/// or per direction for models where node u's reach differs from node v's.
///
/// ## Contract (every implementation, enforced by tests/link_model_test.cpp)
///
///  * **Pure and deterministic**: the decision is a function of
///    (u, v, dist2) and the model's immutable construction state only.
///    Random attenuation (shadowing) must be derived from `support/rng`
///    substreams keyed by the *pair identity* — pure in (seed, min(u, v),
///    max(u, v)) — never from a shared mutable stream, so results are
///    bit-identical regardless of enumeration order or thread count.
///  * **Bounded reach**: no link may exist between nodes farther apart than
///    `max_link_distance()`; the analyses below use it as the cell-grid
///    enumeration radius, so a violation would silently drop links.
///  * **Const thread-safety**: analyses may query one model concurrently
///    from parallel trials; implementations hold no mutable state.
class LinkModel {
 public:
  LinkModel() = default;
  LinkModel(const LinkModel&) = delete;
  LinkModel& operator=(const LinkModel&) = delete;
  virtual ~LinkModel() = default;

  virtual const char* name() const noexcept = 0;
  virtual LinkSymmetry symmetry() const noexcept = 0;

  /// Largest distance at which any link (either direction) can exist. Used
  /// as the candidate-pair enumeration radius; 0 means no links at all.
  virtual double max_link_distance() const noexcept = 0;

  /// Symmetric link decision for the pair (u, v) at squared distance dist2.
  /// For directed models this is the *bidirectional closure*: true iff both
  /// u -> v and v -> u exist (the RangeAssignment symmetric-graph rule).
  virtual bool symmetric_link(std::size_t u, std::size_t v, double dist2) const = 0;

  /// Directed link decision. Defaults to the symmetric rule in both
  /// directions; directed models override.
  virtual void directed_link(std::size_t u, std::size_t v, double dist2, bool& u_to_v,
                             bool& v_to_u) const {
    u_to_v = v_to_u = symmetric_link(u, v, dist2);
  }

  /// Validates the model against a deployment size (throws ConfigError when
  /// the model carries per-node state for a different n). Default: any n.
  virtual void validate_for(std::size_t node_count) const { static_cast<void>(node_count); }
};

/// The paper's point-graph rule: edge iff dist(u, v) <= radius. The seam's
/// identity element — `link_model_edges` / `analyze_link_components` under
/// this model are pinned bit-identical to `proximity_edges` /
/// `analyze_components` (tests/link_model_test.cpp), so selecting it (the
/// default everywhere) is bit-for-bit invisible.
class UnitDiskLinkModel final : public LinkModel {
 public:
  /// Requires radius > 0 (ConfigError — user-facing configuration).
  explicit UnitDiskLinkModel(double radius);

  double radius() const noexcept { return radius_; }

  const char* name() const noexcept override { return "unit-disk"; }
  LinkSymmetry symmetry() const noexcept override { return LinkSymmetry::kSymmetric; }
  double max_link_distance() const noexcept override { return radius_; }
  bool symmetric_link(std::size_t, std::size_t, double dist2) const override {
    return dist2 <= radius_ * radius_;
  }

 private:
  double radius_;
};

/// Parameters of the truncated log-normal shadowing rule (Rappaport §4.9;
/// Song/Goeckel/Towsley's "unreliable links" regime in PAPERS.md).
struct ShadowingParams {
  /// Median link range: the distance at which the *median* channel (zero
  /// shadowing) sits exactly at the receiver threshold. Plays the role the
  /// common range r plays for the unit disk. Must be > 0.
  double reference_range = 1.0;
  /// Log-normal shadowing standard deviation in dB (typically 4-12 outdoors).
  /// 0 reduces the model exactly to the unit disk. Must be >= 0.
  double sigma_db = 6.0;
  /// Path-loss exponent eta (2 free space .. ~6 indoors). Must be > 0.
  double path_loss_exponent = 3.0;
  /// Fading deviates are clipped to +-z_clip standard deviations, which
  /// truncates the (physically implausible, enumeration-breaking) tail of
  /// unbounded log-normal gains and bounds every link by
  /// reference_range * max_gain_factor(). Must be > 0.
  double z_clip = 3.0;
  /// Root seed of the per-pair fading substreams.
  std::uint64_t fading_seed = Rng::kDefaultSeed;

  /// Throws ConfigError on out-of-domain values (NaNs included).
  void validate() const;

  /// Largest possible fading gain, 10^(sigma_db * z_clip / (10 * eta)).
  double max_gain_factor() const;
};

/// Log-normal shadowing / RSSI-threshold links: the pair (u, v) is connected
/// iff dist <= reference_range * g(u, v), where the fading gain
/// g = 10^(sigma_db * Z / (10 * eta)) with Z a standard normal clipped to
/// +-z_clip. Equivalently, received power at distance d exceeds the
/// threshold iff the shadowing deviate exceeds the margin the deterministic
/// path loss leaves — the classical log-normal shadowing link rule solved
/// for distance.
///
/// Determinism: Z is drawn from the `support/rng` substream keyed by
/// (fading_seed, min(u, v), max(u, v)) — a pure function of the unordered
/// pair, so the same seed yields the same graph at any thread count and any
/// enumeration order, and the gain is symmetric (one fade per pair, both
/// directions — the standard reciprocal-channel assumption).
class ShadowingLinkModel final : public LinkModel {
 public:
  /// Validates `params` (ConfigError).
  explicit ShadowingLinkModel(const ShadowingParams& params);

  const ShadowingParams& params() const noexcept { return params_; }

  /// The fading gain of the unordered pair (deterministic; exposed for
  /// tests and for callers that need the effective range of a known pair).
  double pair_gain(std::size_t u, std::size_t v) const;

  const char* name() const noexcept override { return "shadowing"; }
  LinkSymmetry symmetry() const noexcept override { return LinkSymmetry::kSymmetric; }
  double max_link_distance() const noexcept override { return max_link_distance_; }
  bool symmetric_link(std::size_t u, std::size_t v, double dist2) const override {
    const double r_eff = params_.reference_range * pair_gain(u, v);
    return dist2 <= r_eff * r_eff;
  }

 private:
  ShadowingParams params_;
  double max_link_distance_;
};

/// Heterogeneous per-node transmitting ranges: the *directed* link u -> v
/// exists iff dist(u, v) <= r_u. The communication graph is directed as
/// soon as two ranges differ, so "connected" becomes "strongly connected"
/// (graph/scc.hpp). The symmetric projection (both directions) is exactly
/// the RangeAssignment rule `dist <= min(r_u, r_v)` of
/// topology/range_assignment.hpp, tie semantics included (`<=`, compared in
/// squared space — see tests/link_model_test.cpp's boundary regressions).
class HeterogeneousRangeLinkModel final : public LinkModel {
 public:
  /// Takes the per-node assignment (already validated by RangeAssignment).
  explicit HeterogeneousRangeLinkModel(RangeAssignment assignment);

  const RangeAssignment& assignment() const noexcept { return assignment_; }

  const char* name() const noexcept override { return "heterogeneous"; }
  LinkSymmetry symmetry() const noexcept override { return LinkSymmetry::kDirected; }
  double max_link_distance() const noexcept override { return max_range_; }
  bool symmetric_link(std::size_t u, std::size_t v, double dist2) const override;
  void directed_link(std::size_t u, std::size_t v, double dist2, bool& u_to_v,
                     bool& v_to_u) const override;
  /// Throws ConfigError when the deployment size differs from the
  /// assignment's node count.
  void validate_for(std::size_t node_count) const override;

 private:
  RangeAssignment assignment_;
  double max_range_;
};

// ---------------------------------------------------------------------------
// Range-indexed families (critical-range searches sweep the scale parameter).
// ---------------------------------------------------------------------------

/// A family of link models indexed by a scale parameter r (the common range,
/// the shadowing median range, the base of heterogeneous per-node ranges).
/// Connectivity under every family here is monotone in r — links only appear
/// as r grows — which is what the critical-range searches in
/// topology/link_critical_range.hpp rely on.
class LinkModelFamily {
 public:
  LinkModelFamily() = default;
  LinkModelFamily(const LinkModelFamily&) = delete;
  LinkModelFamily& operator=(const LinkModelFamily&) = delete;
  virtual ~LinkModelFamily() = default;

  virtual const char* name() const noexcept = 0;

  /// Instantiates the model at scale `range` for an n-node deployment.
  /// `fading_seed` keys any random attenuation / per-node heterogeneity;
  /// deterministic families ignore it. Requires range > 0.
  virtual std::unique_ptr<LinkModel> at_range(double range, std::size_t node_count,
                                              std::uint64_t fading_seed) const = 0;

  /// True when the family's critical range is exactly the bottleneck edge of
  /// the Euclidean MST (the unit disk — where the paper's argument applies);
  /// the search then skips bisection and reuses the exact engine.
  virtual bool exact_bottleneck() const noexcept { return false; }

  /// Bracket guarantee for the bisection fallback: at scale
  /// region_diagonal * hi_factor() the graph is strongly connected for every
  /// deployment and fading seed (the worst-case gain/factor still spans the
  /// region diagonal).
  virtual double hi_factor() const noexcept { return 1.0; }
};

/// Unit-disk family: at_range(r) = UnitDiskLinkModel(r); exact bottleneck.
class UnitDiskLinkFamily final : public LinkModelFamily {
 public:
  const char* name() const noexcept override { return "unit-disk"; }
  std::unique_ptr<LinkModel> at_range(double range, std::size_t node_count,
                                      std::uint64_t fading_seed) const override;
  bool exact_bottleneck() const noexcept override { return true; }
};

/// Shadowing family: at_range(r) sets reference_range = r and
/// fading_seed = the per-trial seed; sigma/eta/z_clip come from the
/// constructor. hi_factor compensates the deepest truncated fade.
class ShadowingLinkFamily final : public LinkModelFamily {
 public:
  /// `base.reference_range` / `base.fading_seed` are overridden per call;
  /// the remaining parameters are validated here (ConfigError).
  explicit ShadowingLinkFamily(ShadowingParams base);

  const ShadowingParams& base_params() const noexcept { return base_; }

  const char* name() const noexcept override { return "shadowing"; }
  std::unique_ptr<LinkModel> at_range(double range, std::size_t node_count,
                                      std::uint64_t fading_seed) const override;
  double hi_factor() const noexcept override;

 private:
  ShadowingParams base_;
};

/// Heterogeneous-range family: node i transmits at r * f_i with the factor
/// f_i drawn uniformly from [min_factor, max_factor] from the substream
/// (fading_seed, i) — a pure per-node function, so deployments are
/// bit-identical at any thread count. Models device-class heterogeneity
/// (e.g. BLE beacons next to mains-powered gateways).
class HeterogeneousRangeLinkFamily final : public LinkModelFamily {
 public:
  /// Requires 0 < min_factor <= max_factor (ConfigError).
  HeterogeneousRangeLinkFamily(double min_factor, double max_factor);

  double min_factor() const noexcept { return min_factor_; }
  double max_factor() const noexcept { return max_factor_; }

  const char* name() const noexcept override { return "heterogeneous"; }
  std::unique_ptr<LinkModel> at_range(double range, std::size_t node_count,
                                      std::uint64_t fading_seed) const override;
  double hi_factor() const noexcept override { return 1.0 / min_factor_; }

 private:
  double min_factor_;
  double max_factor_;
};

/// Tuning knobs of make_link_model_family (the CLI surface of the seam).
struct LinkModelMenu {
  /// Shadowing defaults; reference_range / fading_seed are per-call inputs.
  ShadowingParams shadowing;
  /// Heterogeneous per-node range factors, relative to the scale parameter.
  double min_range_factor = 0.5;
  double max_range_factor = 1.0;
};

/// Builds the family named by `--link-model`: "unit-disk", "shadowing" or
/// "heterogeneous". Throws ConfigError on unknown names.
std::unique_ptr<LinkModelFamily> make_link_model_family(const std::string& name,
                                                        const LinkModelMenu& menu = {});

/// The names make_link_model_family accepts, in presentation order.
const std::vector<std::string>& link_model_family_names();

// ---------------------------------------------------------------------------
// Graph construction / analysis through the seam.
// ---------------------------------------------------------------------------

/// Enumerates the symmetric(-projection) edges of the communication graph
/// under `model`, each unordered pair emitted at most once as (u < v) in
/// cell-grid enumeration order. For UnitDiskLinkModel this is bit-identical
/// to proximity_edges (same grid, same order, same tie rule).
template <int D>
std::vector<std::pair<std::size_t, std::size_t>> link_model_edges(
    std::span<const Point<D>> points, const Box<D>& box, const LinkModel& model) {
  model.validate_for(points.size());
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  const double radius = model.max_link_distance();
  if (points.size() < 2 || !(radius > 0.0)) return edges;
  const CellGrid<D> grid(points, box, radius);
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double d2) {
    if (model.symmetric_link(i, j, d2)) edges.emplace_back(i, j);
  });
  return edges;
}

/// Enumerates the directed arcs of the communication graph under `model`
/// (both orientations tested per candidate pair; symmetric models emit each
/// link as two arcs). Arc order follows the pair enumeration order with
/// u -> v before v -> u.
template <int D>
std::vector<DirectedEdge> link_model_arcs(std::span<const Point<D>> points, const Box<D>& box,
                                          const LinkModel& model) {
  model.validate_for(points.size());
  std::vector<DirectedEdge> arcs;
  const double radius = model.max_link_distance();
  if (points.size() < 2 || !(radius > 0.0)) return arcs;
  const CellGrid<D> grid(points, box, radius);
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double d2) {
    bool ij = false;
    bool ji = false;
    model.directed_link(i, j, d2, ij, ji);
    if (ij) arcs.push_back({i, j});
    if (ji) arcs.push_back({j, i});
  });
  return arcs;
}

/// CSR communication graph of the symmetric(-projection) edge set — what the
/// degree/hop metrics (graph/metrics.hpp) consume.
template <int D>
AdjacencyGraph build_link_communication_graph(std::span<const Point<D>> points,
                                              const Box<D>& box, const LinkModel& model) {
  const auto edges = link_model_edges<D>(points, box, model);
  return AdjacencyGraph(points.size(), edges);
}

/// Connectivity structure under `model` without materializing the graph —
/// the LinkModel generalization of analyze_components.
///
/// Symmetric models: identical census to analyze_components (for
/// UnitDiskLinkModel, field-for-field identical — the differential suite
/// pins it), with the strong census mirroring the weak one.
///
/// Directed models: the undirected fields describe the *bidirectional*
/// subgraph (the symmetric closure, i.e. the RangeAssignment rule), the
/// degree/isolated census counts bidirectional neighbors, and scc_count /
/// largest_scc_size census the directed graph via graph/scc.hpp — so
/// `strongly_connected()` answers the generalized connectivity question.
template <int D>
ComponentSummary analyze_link_components(std::span<const Point<D>> points, const Box<D>& box,
                                         const LinkModel& model) {
  model.validate_for(points.size());
  ComponentSummary summary;
  summary.node_count = points.size();
  if (points.empty()) return summary;

  const bool directed = model.symmetry() == LinkSymmetry::kDirected;
  UnionFind dsu(points.size());
  std::vector<std::size_t> degree(points.size(), 0);
  std::vector<DirectedEdge> arcs;

  const double radius = model.max_link_distance();
  if (points.size() >= 2 && radius > 0.0) {
    const CellGrid<D> grid(points, box, radius);
    grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j, double d2) {
      if (!directed) {
        if (model.symmetric_link(i, j, d2)) {
          dsu.unite(i, j);
          ++degree[i];
          ++degree[j];
        }
        return;
      }
      bool ij = false;
      bool ji = false;
      model.directed_link(i, j, d2, ij, ji);
      if (ij) arcs.push_back({i, j});
      if (ji) arcs.push_back({j, i});
      if (ij && ji) {
        dsu.unite(i, j);
        ++degree[i];
        ++degree[j];
      }
    });
  }

  summary.component_count = dsu.component_count();
  summary.largest_size = dsu.largest_component_size();
  for (std::size_t d : degree) {
    if (d == 0) ++summary.isolated_count;
  }
  if (directed) {
    const SccPartition scc = strongly_connected_components(points.size(), arcs);
    summary.scc_count = scc.component_count;
    summary.largest_scc_size = scc.largest_size;
  } else {
    summary.scc_count = summary.component_count;
    summary.largest_scc_size = summary.largest_size;
  }
  MANET_ENSURE(summary.largest_size >= 1 && summary.largest_size <= summary.node_count);
  MANET_ENSURE(summary.component_count >= 1 && summary.component_count <= summary.node_count);
  MANET_ENSURE(summary.isolated_count <= summary.node_count);
  MANET_ENSURE(summary.scc_count >= summary.component_count ||
               (!directed && summary.scc_count == summary.component_count));
  return summary;
}

}  // namespace manet
