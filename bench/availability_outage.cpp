// ABLATION / dependability bench: the temporal structure of downtime.
//
// The paper estimates availability as the fraction of time the network is
// connected (Section 1). That fraction says nothing about *how* the
// downtime is distributed — 10% downtime as many one-step glitches is a very
// different dependability story than one 1000-step blackout. This bench
// operates the paper's l = 4096 network at its own r100/r90/r10 and reports
// the outage-interval statistics under both mobility models.
//
// Expected: at r90 the outages are short relative to the trace (mobility
// heals gaps); at r10 the network lives in long outages broken by brief
// connected windows — the environmental-monitoring regime of Section 4.

#include "common/figure_bench.hpp"
#include "core/availability.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "availability_outage: outage-interval structure at r100/r90/r10");
  if (!options) return 0;

  Rng rng(options->seed);
  const double l = 4096.0;

  TextTable table({"model", "f", "range", "availability", "outages", "longest outage",
                   "mean outage", "longest uptime"});
  for (bool drunkard : {false, true}) {
    Rng point_rng = rng.split();
    MtrmConfig config = drunkard ? experiments::drunkard_experiment(l, options->preset)
                                 : experiments::waypoint_experiment(l, options->preset);
    apply_scale(config, *options);
    const auto aggregates = solve_outage_structure<2>(config, point_rng);

    for (const OutageAggregate& aggregate : aggregates) {
      table.add_row({drunkard ? "drunkard" : "waypoint",
                     TextTable::num(aggregate.time_fraction, 2),
                     TextTable::num(aggregate.operating_range.mean(), 1),
                     TextTable::num(aggregate.availability.mean(), 3),
                     TextTable::num(aggregate.outage_count.mean(), 1),
                     TextTable::num(aggregate.longest_outage.mean(), 1),
                     TextTable::num(aggregate.mean_outage_length.mean(), 1),
                     TextTable::num(aggregate.longest_uptime.mean(), 1)});
    }
  }
  print_result(table, *options,
               "Dependability — outage-interval structure at the solved ranges "
               "(l=4096, n=64)",
               "Dependability extension beyond the paper: interval structure of downtime.\n"
               "See EXPERIMENTS.md.");
  return 0;
}
