// Microbenchmarks (google-benchmark) of the occupancy-theory kernels used
// by the Section 3 validation bench: the O(n*C) exact distribution DP and
// the Lemma 2 conditional probabilities.

#include <benchmark/benchmark.h>

#include <cmath>

#include "occupancy/gap_pattern.hpp"
#include "occupancy/occupancy.hpp"
#include "support/rng.hpp"

namespace {

using namespace manet;

void BM_EmptyCellsDistribution(benchmark::State& state) {
  const auto C = static_cast<std::uint64_t>(state.range(0));
  const auto n = static_cast<std::uint64_t>(
      static_cast<double>(C) * std::sqrt(std::log(static_cast<double>(C))));
  for (auto _ : state) {
    auto pmf = occupancy::empty_cells_distribution(n, C);
    benchmark::DoNotOptimize(pmf);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * C));
}
BENCHMARK(BM_EmptyCellsDistribution)->Arg(64)->Arg(256)->Arg(1024);

void BM_PatternProbabilityExact(benchmark::State& state) {
  const auto C = static_cast<std::uint64_t>(state.range(0));
  const auto n = 2 * C;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gap_pattern::pattern_probability(n, C));
  }
}
BENCHMARK(BM_PatternProbabilityExact)->Arg(64)->Arg(256)->Arg(1024);

void BM_PatternProbabilityMonteCarlo(benchmark::State& state) {
  const auto C = static_cast<std::size_t>(state.range(0));
  const std::uint64_t n = 2 * C;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gap_pattern::pattern_probability_monte_carlo(n, C, 100, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_PatternProbabilityMonteCarlo)->Arg(64)->Arg(256);

void BM_LimitLaw(benchmark::State& state) {
  const std::uint64_t C = 4096;
  const std::uint64_t n = 8192;
  for (auto _ : state) {
    benchmark::DoNotOptimize(occupancy::limit_law(n, C));
  }
}
BENCHMARK(BM_LimitLaw);

}  // namespace

BENCHMARK_MAIN();
