// Figure 4 of the paper: average size of the largest connected component
// (fraction of n) at r90, r10 and r0 for increasing l, RANDOM WAYPOINT model.
//
// The average is taken over the steps where the network is disconnected
// ("averaged over the runs that yield a disconnected graph").
//
// Expected shape: all three series grow with l; at r90 the fraction
// approaches ~0.98 (disconnections are caused by a few isolated nodes); at
// r10 a ~0.9n component persists; dropping to r0 collapses it to ~0.5n.

#include "common/figure_bench.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv,
      "fig4_waypoint_component: mean largest component at r90/r10/r0, random waypoint");
  if (!options) return 0;

  // Digitized from the published Figure 4 (approximate).
  const std::vector<PaperSeries> paper = {
      {"LCC@r90", {0.90, 0.94, 0.97, 0.98}},
      {"LCC@r10", {0.75, 0.82, 0.87, 0.90}},
      {"LCC@r0", {0.45, 0.48, 0.50, 0.50}},
  };
  run_component_figure(*options, /*drunkard=*/false,
                       "Figure 4 — mean largest-component fraction (random waypoint)",
                       paper);
  return 0;
}
