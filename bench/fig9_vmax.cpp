// Figure 9 of the paper: r100 / r_stationary as a function of v_max (from
// 0.01*l to 0.5*l) in the random waypoint model (l = 4096, n = 64).
//
// Expected shape: NEARLY FLAT — "the value of r100 is almost independent of
// v_max: except for low velocities (v_max below 0.1*l), r100 is slightly
// above r_stationary". Counter-intuitively, larger v_max can reduce the
// quantity of mobility because nodes reach their destinations quickly and
// then pause for t_pause = 2000 steps.

#include "common/figure_bench.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig9_vmax: r100/r_stationary vs v_max (random waypoint)",
      /*with_campaign=*/true);
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();

  Rng stationary_rng = rng.split();
  const double l = 4096.0;
  const std::size_t n = experiments::paper_node_count(l);
  const double rs = stationary_reference_range(l, n, scale.stationary_trials, options->rs_quantile, stationary_rng);

  // Approximate published curve: ~1.15 at the slowest sweep point, settling
  // to a flat ~1.05 for v_max >= 0.1*l.
  const auto paper_value = [](double fraction) {
    if (fraction < 0.1) return 1.15 - (fraction - 0.01) / 0.09 * 0.10;
    return 1.05;
  };

  // Per-data-point fan-out: one config per v_max, solved through the
  // parallel trial engine (bit-identical at any thread count).
  const auto fractions = experiments::figure9_vmax_fractions();
  std::vector<MtrmConfig> configs;
  configs.reserve(fractions.size());
  for (double fraction : fractions) {
    MtrmConfig config = experiments::sweep_base_config(options->preset);
    apply_scale(config, *options);
    config.mobility.waypoint.v_max = fraction * l;
    config.component_fractions.clear();
    config.time_fractions = {1.0};
    configs.push_back(config);
  }
  const auto executor = make_sweep_executor(*options);
  const auto results = experiments::solve_mtrm_sweep(configs, options->seed, executor.get());

  TextTable table({"v_max/l", "v_max", "r100/rs", "paper (approx)"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    table.add_row({TextTable::num(fractions[i], 2), TextTable::num(fractions[i] * l, 1),
                   TextTable::num(results[i].range_for_time[0].mean() / rs, 3),
                   TextTable::num(paper_value(fractions[i]), 2)});
  }
  print_result(table, *options, "Figure 9 — r100 / r_stationary vs v_max");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const manet::ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
}
