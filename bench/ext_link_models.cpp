// EXTENSION bench: the energy/savings trade-off of Section 4, re-asked under
// each link model behind the LinkModel seam (graph/link_model.hpp).
//
// The paper prices connectivity with the unit-disk rule: every node hears
// every neighbor within the common range r, full stop. Real radios fade
// (log-normal shadowing) and real fleets mix device classes (heterogeneous
// per-node ranges, where links become directed and "connected" means
// strongly connected). This bench runs the identical methodology — sample
// the critical-scale distribution over independent deployments, read the
// "always connected" (p_full) and "usually connected" (p_tolerant) targets
// off its exact order statistics, price the relaxation with the r^alpha
// energy model — once per link model, so the rows are directly comparable.
//
// Expected: shadowing stretches the upper tail (one deeply faded pair can
// hold the whole deployment hostage), so both targets rise and the relative
// saving from tolerating disconnection grows; heterogeneous ranges raise the
// required base scale roughly by 1/min_factor while leaving the *relative*
// trade-off close to the unit disk. All rows are bit-identical at any
// --threads setting (the determinism contract of DESIGN.md §3 and §17).

#include <iostream>

#include "core/experiments.hpp"
#include "graph/link_model.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  try {
    CliParser cli(
        "ext_link_models: energy/savings trade-off per link model (unit disk, "
        "log-normal shadowing, heterogeneous ranges)");
    cli.add_option("link-model", "model to sweep: all|unit-disk|shadowing|heterogeneous",
                   "all");
    cli.add_option("shadowing-sigma", "shadowing std deviation in dB", "6.0");
    cli.add_option("path-loss", "path-loss exponent eta of the shadowing model", "3.0");
    cli.add_option("z-clip", "fading deviates clipped to +-z standard deviations", "3.0");
    cli.add_option("min-range-factor", "heterogeneous per-node range factor lower bound",
                   "0.5");
    cli.add_option("max-range-factor", "heterogeneous per-node range factor upper bound",
                   "1.0");
    cli.add_option("nodes", "nodes per deployment", "64");
    cli.add_option("side", "deployment region side l", "4096");
    cli.add_option("trials", "independent deployments per model", "100");
    cli.add_option("alpha", "path-loss exponent of the energy model", "2.0");
    cli.add_option("p-full", "\"always connected\" target probability", "0.99");
    cli.add_option("p-tolerant", "relaxed connectivity target probability", "0.90");
    cli.add_option("seed", "root seed", "2002");
    cli.add_option("threads", "worker threads (0 = default, 1 = serial)", "0");
    cli.add_flag("csv", "emit CSV instead of the text table");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.help_text();
      return 0;
    }

    if (cli.uint_value("threads") > 0) {
      set_max_parallelism(static_cast<std::size_t>(cli.uint_value("threads")));
    }

    LinkModelMenu menu;
    menu.shadowing.sigma_db = cli.double_value("shadowing-sigma");
    menu.shadowing.path_loss_exponent = cli.double_value("path-loss");
    menu.shadowing.z_clip = cli.double_value("z-clip");
    menu.min_range_factor = cli.double_value("min-range-factor");
    menu.max_range_factor = cli.double_value("max-range-factor");

    std::vector<std::unique_ptr<LinkModelFamily>> owned;
    const std::string selection = cli.string_value("link-model");
    if (selection == "all") {
      for (const std::string& name : link_model_family_names()) {
        owned.push_back(make_link_model_family(name, menu));
      }
    } else {
      owned.push_back(make_link_model_family(selection, menu));
    }
    std::vector<const LinkModelFamily*> families;
    for (const auto& family : owned) families.push_back(family.get());

    experiments::LinkModelTradeoffConfig config;
    config.node_count = static_cast<std::size_t>(cli.uint_value("nodes"));
    config.side = cli.double_value("side");
    config.trials = static_cast<std::size_t>(cli.uint_value("trials"));
    config.alpha = cli.double_value("alpha");
    config.p_full = cli.double_value("p-full");
    config.p_tolerant = cli.double_value("p-tolerant");

    const auto rows =
        experiments::link_model_energy_tradeoff(config, families, cli.uint_value("seed"));

    TextTable table({"model", "r_full", "r_tolerant", "mean rc", "range cut", "energy saved"});
    for (const auto& row : rows) {
      table.add_row({row.model, TextTable::num(row.r_full, 2),
                     TextTable::num(row.r_tolerant, 2),
                     TextTable::num(row.mean_critical_range, 2),
                     TextTable::num(row.range_reduction, 4),
                     TextTable::num(row.energy_savings, 4)});
    }
    if (cli.flag("csv")) {
      table.print_csv(std::cout);
    } else {
      std::cout << "Extension — energy/savings trade-off per link model (n=" << config.node_count
                << ", l=" << config.side << ", trials=" << config.trials
                << ", p_full=" << config.p_full << ", p_tolerant=" << config.p_tolerant
                << ")\n";
      table.print(std::cout);
      std::cout << "Extension beyond the paper: Section 4's trade-off under non-unit-disk link\n"
                   "models via the LinkModel seam (DESIGN.md §17). See EXPERIMENTS.md.\n";
    }
    return 0;
  } catch (const ConfigError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
