// Figure 8 of the paper: r100 / r_stationary as a function of the pause
// time t_pause in the random waypoint model (l = 4096, n = 64).
//
// Expected shape: a mild DOWNWARD TREND as t_pause grows (longer pauses make
// the system more stationary), with a visible softening in the 4000-6000
// window but — unlike Figure 7 — NO sharp threshold ("although the trend
// can be observed, no sharp threshold actually exists").

#include "common/figure_bench.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig8_tpause: r100/r_stationary vs t_pause (random waypoint)",
      /*with_campaign=*/true);
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();

  Rng stationary_rng = rng.split();
  const double l = 4096.0;
  const std::size_t n = experiments::paper_node_count(l);
  const double rs = stationary_reference_range(l, n, scale.stationary_trials, options->rs_quantile, stationary_rng);

  // Approximate published curve: ~1.17 at t_pause = 0 easing to ~1.02 at
  // 10000, steepest between 4000 and 6000.
  const auto paper_value = [](double t) {
    if (t <= 4000.0) return 1.17 - 0.05 * t / 4000.0;
    if (t <= 6000.0) return 1.12 - 0.07 * (t - 4000.0) / 2000.0;
    return 1.05 - 0.03 * (t - 6000.0) / 4000.0;
  };

  // Per-data-point fan-out: one config per t_pause, solved through the
  // parallel trial engine (bit-identical at any thread count).
  const auto t_values = experiments::figure8_tpause_values();
  std::vector<MtrmConfig> configs;
  configs.reserve(t_values.size());
  for (double t_pause : t_values) {
    MtrmConfig config = experiments::sweep_base_config(options->preset);
    apply_scale(config, *options);
    config.mobility.waypoint.pause_steps = static_cast<std::size_t>(t_pause);
    config.component_fractions.clear();
    config.time_fractions = {1.0};
    configs.push_back(config);
  }
  const auto executor = make_sweep_executor(*options);
  const auto results = experiments::solve_mtrm_sweep(configs, options->seed, executor.get());

  TextTable table({"t_pause", "r100/rs", "paper (approx)"});
  for (std::size_t i = 0; i < t_values.size(); ++i) {
    table.add_row({TextTable::num(t_values[i], 0),
                   TextTable::num(results[i].range_for_time[0].mean() / rs, 3),
                   TextTable::num(paper_value(t_values[i]), 2)});
  }
  print_result(table, *options, "Figure 8 — r100 / r_stationary vs t_pause");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const manet::ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
}
