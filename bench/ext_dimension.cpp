// EXTENSION bench: the n * r^d invariant across dimensions.
//
// Section 2: "our solutions typically specify requirements on the product of
// n and r^d that ensures connectedness". This bench measures the stationary
// r_stationary in d = 1, 2, 3 for the paper's node counts and reports the
// normalized products n * r^d / (l^d ln n): if the d-dimensional coverage
// heuristic holds, the normalized product is an O(1) constant per dimension
// while raw ranges differ by orders of magnitude.
//
// Expected: within each dimension the normalized product is stable in l
// (drifting slowly, consistent with boundary effects shrinking), while the
// unnormalized r values vary by ~50x across the sweep.

#include <cmath>

#include "common/figure_bench.hpp"

namespace {

using namespace manet;
using namespace manet::bench;

template <int D>
double stationary_range_d(std::size_t n, double l, std::size_t trials, double quantile,
                          Rng& rng) {
  const Box<D> region(l);
  MtrOptions options;
  options.trials = trials;
  options.target_probability = quantile;
  return estimate_mtr<D>(n, region, options, rng).range;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_figure_options(
      argc, argv, "ext_dimension: the n * r^d connectivity invariant in d = 1, 2, 3");
  if (!options) return 0;

  Rng rng(options->seed);
  const std::size_t trials = options->scale().stationary_trials;

  TextTable table({"l", "n", "r (d=1)", "n*r/(l ln n)", "r (d=2)", "n*r^2/(l^2 ln n)",
                   "r (d=3)", "n*r^3/(l^3 ln n)"});
  for (double l : experiments::figure_l_values()) {
    const std::size_t n = experiments::paper_node_count(l);
    const double log_n = std::log(static_cast<double>(n));
    Rng point_rng = rng.split();

    const double r1 = stationary_range_d<1>(n, l, trials, options->rs_quantile, point_rng);
    const double r2 = stationary_range_d<2>(n, l, trials, options->rs_quantile, point_rng);
    const double r3 = stationary_range_d<3>(n, l, trials, options->rs_quantile, point_rng);

    const double nn = static_cast<double>(n);
    table.add_row({l_label(l), std::to_string(n), TextTable::num(r1, 1),
                   TextTable::num(nn * r1 / (l * log_n), 3), TextTable::num(r2, 1),
                   TextTable::num(nn * r2 * r2 / (l * l * log_n), 3),
                   TextTable::num(r3, 1),
                   TextTable::num(nn * r3 * r3 * r3 / (l * l * l * log_n), 3)});
  }
  print_result(table, *options,
               "Extension — r_stationary and the normalized n*r^d product in d = 1, 2, 3",
               "Extension beyond the paper: Section 2's n*r^d product remark, tested across\n"
               "dimensions. See EXPERIMENTS.md.");
  return 0;
}
