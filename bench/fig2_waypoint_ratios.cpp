// Figure 2 of the paper: values of r100/r90/r10/r0 relative to r_stationary
// for increasing system size l in the RANDOM WAYPOINT model.
//
// Setup (Section 4.2): l in {256, 1K, 4K, 16K}, n = sqrt(l), p_stationary=0,
// v_min = 0.1, v_max = 0.01*l, t_pause = 2000; ranges averaged over
// iterations of mobility steps (50 x 10000 at --preset paper).
//
// Expected shape: all ratios grow slowly with l; r100/rs ends ~1.2 (a modest
// ~21% premium keeps the moving network always connected); r90 is 35-40%
// below r100; r10 another big step down; r0 around 0.25-0.40 of rs.

#include "common/figure_bench.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig2_waypoint_ratios: r_x / r_stationary vs l, random waypoint model",
      /*with_campaign=*/true);
  if (!options) return 0;

  // Digitized from the published Figure 2 (approximate).
  const std::vector<PaperSeries> paper = {
      {"r100/rs", {1.05, 1.10, 1.15, 1.21}},
      {"r90/rs", {0.62, 0.66, 0.70, 0.75}},
      {"r10/rs", {0.40, 0.42, 0.44, 0.47}},
      {"r0/rs", {0.25, 0.28, 0.31, 0.35}},
  };
  const auto executor = make_sweep_executor(*options);
  run_ratio_figure(*options, /*drunkard=*/false,
                   "Figure 2 — r_x / r_stationary vs l (random waypoint)", paper,
                   executor.get());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const manet::ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
}
