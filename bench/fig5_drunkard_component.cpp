// Figure 5 of the paper: average size of the largest connected component
// (fraction of n) at r90, r10 and r0 for increasing l, DRUNKARD model.
//
// Expected shape: nearly identical to Figure 4 — the paper's point is that
// the two mobility models are statistically indistinguishable here too.

#include "common/figure_bench.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv,
      "fig5_drunkard_component: mean largest component at r90/r10/r0, drunkard");
  if (!options) return 0;

  // Digitized from the published Figure 5 (approximate).
  const std::vector<PaperSeries> paper = {
      {"LCC@r90", {0.90, 0.94, 0.97, 0.98}},
      {"LCC@r10", {0.74, 0.81, 0.86, 0.90}},
      {"LCC@r0", {0.44, 0.47, 0.50, 0.50}},
  };
  run_component_figure(*options, /*drunkard=*/true,
                       "Figure 5 — mean largest-component fraction (drunkard)", paper);
  return 0;
}
