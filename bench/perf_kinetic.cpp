// Kinetic vs batch EMST over a mobile trace (the whole-trace analogue of
// perf_mst's single-solve comparison): one random-waypoint trajectory at the
// paper's l = 1024 region, solved step by step twice — once re-solving from
// scratch every step (EmstEngine) and once incrementally repairing
// (KineticEmstEngine) — with identical seeds, so both engines see the exact
// same positions at every step.
//
// The kinetic engine's contract is that it changes NOTHING but the running
// time, so the bench folds every step's MST weight sequence of each engine
// into an FNV-1a digest and exits nonzero when the digests differ — a
// speedup that moves a single bit of the simulation output is a bug, not a
// speedup. It also counts heap allocations over the second half of the
// kinetic trace (global operator new replacement): the steady-state
// allocations per advance() must be 0 (tests/alloc_discipline_test.cpp pins
// the same number).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "geometry/box.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "support/bench_json.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "topology/emst_grid.hpp"
#include "topology/emst_kinetic.hpp"
#include "topology/mst.hpp"

namespace {

// Single-threaded bench: a plain counter is enough.
std::size_t g_news = 0;
bool g_counting = false;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_news;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace manet;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Folds a tree's weight sequence (Kruskal acceptance order — deterministic)
/// into a running FNV-1a digest.
std::uint64_t fold_tree(std::span<const WeightedEdge> tree, std::uint64_t hash) {
  for (const auto& edge : tree) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &edge.weight, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= kFnv1aPrime;
    }
  }
  return hash;
}

struct TraceConfig {
  std::size_t n;
  std::size_t steps;
};

struct EngineRun {
  double seconds = 0.0;           ///< time inside the engine calls only
  std::uint64_t digest = kFnv1aOffset;
  std::size_t steady_allocs = 0;  ///< heap allocations over the 2nd half
};

/// Replays the identical trajectory (same seed, model re-created) through
/// one engine. `Solve(positions, first_step)` returns the step's tree.
template <typename Solve>
EngineRun run_trace(const TraceConfig& config, const Box2& box, std::uint64_t seed,
                    Solve&& solve) {
  const MobilityConfig mobility = MobilityConfig::paper_waypoint(box.side());
  Rng rng(seed);
  auto positions = uniform_deployment(config.n, box, rng);
  const auto model = make_mobility_model<2>(mobility, box);
  model->initialize(positions, rng);

  EngineRun run;
  const std::size_t half = config.steps / 2;
  for (std::size_t s = 0; s < config.steps; ++s) {
    if (s > 0) model->step(positions, rng);
    if (s == half) {
      g_news = 0;
      g_counting = true;
    }
    const double start = now_seconds();
    const auto tree = solve(positions, s == 0);
    run.seconds += now_seconds() - start;
    run.digest = fold_tree(tree, run.digest);
  }
  g_counting = false;
  run.steady_allocs = g_news;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool with_metrics = false;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--metrics") {
      with_metrics = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      std::printf("usage: %s [--quick] [--metrics] [--seed S]\n", argv[0]);
      return arg == "--help" ? 0 : 1;
    }
  }

  const double side = 1024.0;  // the paper's 2-D region
  const Box2 box(side);
  // The acceptance point is {4096, 10000}: a full paper-scale trace at a
  // node count where the batch re-solve clearly dominates the step cost.
  // {65536, 131072} extend the sweep into the Wang-et-al. critical-
  // connectivity scaling regime (n >= 10^5) that the SoA + SIMD kernel layer
  // (geometry/distance_kernels.hpp) targets; fewer steps keep the batch
  // reference affordable there.
  std::vector<TraceConfig> sweep = {{1024, 3000},  {4096, 10000}, {16384, 1200},
                                    {32768, 400},  {65536, 200},  {131072, 100}};
  if (quick) sweep = {{1024, 300}};

  bool identical = true;

  BenchReport report("emst_kinetic_vs_batch");
  report.add_param("d", JsonValue::number(std::size_t{2}));
  report.add_param("l", JsonValue::number(side));
  report.add_param("seed", JsonValue::string(hex_u64(seed)));
  report.add_param("mobility", JsonValue::string("paper random waypoint (v_max = 0.01*l, t_pause = 2000)"));
  report.add_param("batch", JsonValue::string("EmstEngine (full re-solve per step)"));
  report.add_param("kinetic",
                   JsonValue::string("KineticEmstEngine (incremental repair, batch fallback)"));

  for (const TraceConfig& config : sweep) {
    EmstEngine<2> batch_engine;
    const EngineRun batch = run_trace(
        config, box, seed, [&batch_engine, &box](std::span<const Point2> positions, bool) {
          return batch_engine.euclidean(positions, box);
        });

    KineticEmstEngine<2> kinetic_engine;
    const EngineRun kinetic = run_trace(
        config, box, seed,
        [&kinetic_engine, &box](std::span<const Point2> positions, bool first_step) {
          return first_step ? kinetic_engine.start(positions, box)
                            : kinetic_engine.advance(positions);
        });

    if (batch.digest != kinetic.digest) identical = false;
    const KineticStats& stats = kinetic_engine.stats();

    JsonValue sample = JsonValue::object();
    sample.set("n", JsonValue::number(config.n));
    sample.set("steps", JsonValue::number(config.steps));
    sample.set("batch_seconds", JsonValue::number(batch.seconds));
    sample.set("kinetic_seconds", JsonValue::number(kinetic.seconds));
    sample.set("speedup", JsonValue::number(batch.seconds / kinetic.seconds));
    sample.set("trace_digest", JsonValue::string(hex_u64(kinetic.digest)));
    sample.set("incremental_repairs", JsonValue::number(stats.incremental_repairs));
    sample.set("full_rebuilds", JsonValue::number(stats.full_rebuilds));
    sample.set("mass_move_rebuilds", JsonValue::number(stats.mass_move_rebuilds));
    sample.set("radius_growths", JsonValue::number(stats.radius_growths));
    sample.set("radius_shrinks", JsonValue::number(stats.radius_shrinks));
    sample.set("boundary_crossings", JsonValue::number(stats.boundary_crossings));
    sample.set("steady_state_allocs_second_half", JsonValue::number(kinetic.steady_allocs));
    report.add_sample(std::move(sample));
  }

  report.add_extra("traces_bit_identical", JsonValue::boolean(identical));
  report.add_param("manet_metrics", JsonValue::boolean(metrics::compiled_in()));
  if (with_metrics) report.add_extra("metrics", metrics::collect_json());
  std::printf("%s\n", report.dump().c_str());

  if (!identical) {
    std::fprintf(stderr, "FATAL: kinetic EMST trace diverged from the batch path\n");
    return 1;
  }
  return 0;
}
