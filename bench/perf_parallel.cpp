// Thread-scaling benchmark of the deterministic parallel Monte-Carlo engine
// (support/parallel.hpp): one fixed MTRM workload solved at 1 / 2 / 4 / 8
// threads, reported as JSON. Because the engine guarantees bit-identical
// results at any thread count, the bench also re-verifies that guarantee on
// the benchmark workload and exits nonzero if any thread count diverges —
// a speedup obtained by breaking determinism is not a speedup.
//
// Speedup is relative to the 1-thread (legacy serial path) run. Values near
// linear require at least as many cores as threads; on smaller machines the
// curve flattens at the core count, which the "hardware_concurrency" field
// makes visible in the output.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/mtrm.hpp"
#include "support/bench_json.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace manet;

double solve_seconds(const MtrmConfig& config, std::uint64_t seed, double& out_value) {
  const auto start = std::chrono::steady_clock::now();
  Rng rng(seed);
  const MtrmResult result = solve_mtrm<2>(config, rng);
  const auto stop = std::chrono::steady_clock::now();
  out_value = result.mean_critical_range.mean();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  bool quick = false;
  bool with_metrics = false;
  std::uint64_t seed = 1;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--metrics") {
      with_metrics = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::stoi(argv[++i]);
    } else {
      std::printf("usage: %s [--quick] [--metrics] [--seed S] [--repeats K]\n", argv[0]);
      return arg == "--help" ? 0 : 1;
    }
  }

  // Fixed workload: the paper's l = 1024 waypoint experiment at the default
  // preset, with the iteration count raised to 16 so the trial fan-out
  // divides evenly at every measured thread count (1, 2, 4, 8).
  MtrmConfig config =
      experiments::waypoint_experiment(1024.0, quick ? Preset::kQuick : Preset::kDefault);
  config.iterations = 16;
  if (quick) config.steps = 200;

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  double serial_seconds = 0.0;
  double serial_value = 0.0;
  bool deterministic = true;

  // Shared bench JSON schema (support/bench_json.hpp).
  BenchReport report("parallel_mtrm_scaling");
  report.add_param("model", JsonValue::string("random_waypoint"));
  report.add_param("l", JsonValue::number(config.side));
  report.add_param("n", JsonValue::number(config.node_count));
  report.add_param("steps", JsonValue::number(config.steps));
  report.add_param("iterations", JsonValue::number(config.iterations));
  report.add_param("seed", JsonValue::string(hex_u64(seed)));
  report.add_param("repeats", JsonValue::number(static_cast<std::size_t>(repeats)));
  report.add_param("hardware_concurrency", JsonValue::number(max_parallelism()));
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    set_max_parallelism(threads);
    double value = 0.0;
    double best = 1e300;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      double repeat_value = 0.0;
      const double seconds = solve_seconds(config, seed, repeat_value);
      if (seconds < best) best = seconds;
      value = repeat_value;
    }
    if (threads == 1) {
      serial_seconds = best;
      serial_value = value;
    } else if (std::memcmp(&value, &serial_value, sizeof(double)) != 0) {
      deterministic = false;
    }
    JsonValue sample = JsonValue::object();
    sample.set("threads", JsonValue::number(threads));
    sample.set("seconds", JsonValue::number(best));
    sample.set("speedup", JsonValue::number(serial_seconds / best));
    report.add_sample(std::move(sample));
  }
  set_max_parallelism(0);
  report.add_param("manet_metrics", JsonValue::boolean(metrics::compiled_in()));
  report.add_extra("bit_identical_across_thread_counts", JsonValue::boolean(deterministic));
  if (with_metrics) report.add_extra("metrics", metrics::collect_json());
  std::printf("%s\n", report.dump().c_str());

  if (!deterministic) {
    std::fprintf(stderr, "FATAL: results diverged across thread counts\n");
    return 1;
  }
  return 0;
}
