// Figure 7 of the paper: r100 / r_stationary as a function of p_stationary
// in the random waypoint model (l = 4096, n = 64; other parameters at their
// Section 4.2 defaults), with the paper's finer 0.02-step exploration of the
// [0.4, 0.6] window.
//
// Expected shape: a distinct THRESHOLD at p_stationary ~ 0.5 — with about
// n/2 or more nodes permanently stationary the network behaves like a
// stationary one (ratio ~= 1), below that the full mobility premium
// (~1.1-1.15) applies.

#include "common/figure_bench.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig7_pstationary: r100/r_stationary vs p_stationary (random waypoint)",
      /*with_campaign=*/true);
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();

  // One stationary reference for the whole sweep (it does not depend on the
  // mobility parameters).
  Rng stationary_rng = rng.split();
  const double l = 4096.0;
  const std::size_t n = experiments::paper_node_count(l);
  const double rs = stationary_reference_range(l, n, scale.stationary_trials, options->rs_quantile, stationary_rng);

  // Approximate published curve: ~1.12 flat, sharp drop across [0.4, 0.6],
  // ~1.0 beyond.
  const auto paper_value = [](double p) {
    if (p < 0.4) return 1.12;
    if (p < 0.6) return 1.12 - 0.12 * (p - 0.4) / 0.2;
    return 1.0;
  };

  // Per-data-point fan-out: one config per p, solved through the parallel
  // trial engine (bit-identical at any thread count, results in p order).
  const auto p_values = experiments::figure7_pstationary_values();
  std::vector<MtrmConfig> configs;
  configs.reserve(p_values.size());
  for (double p : p_values) {
    MtrmConfig config = experiments::sweep_base_config(options->preset);
    apply_scale(config, *options);
    config.mobility.waypoint.p_stationary = p;
    config.component_fractions.clear();  // only r100 is needed here
    config.time_fractions = {1.0};
    configs.push_back(config);
  }
  const auto executor = make_sweep_executor(*options);
  const auto results = experiments::solve_mtrm_sweep(configs, options->seed, executor.get());

  TextTable table({"p_stationary", "r100/rs", "paper (approx)"});
  for (std::size_t i = 0; i < p_values.size(); ++i) {
    table.add_row({TextTable::num(p_values[i], 2),
                   TextTable::num(results[i].range_for_time[0].mean() / rs, 3),
                   TextTable::num(paper_value(p_values[i]), 2)});
  }
  print_result(table, *options, "Figure 7 — r100 / r_stationary vs p_stationary");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const manet::ConfigError& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
}
