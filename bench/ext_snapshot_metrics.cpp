// EXTENSION bench: what the operated network looks like from the inside.
//
// Figures 4-5 report only the largest-component size. This bench adds the
// structural detail behind the paper's commentary: per-snapshot degree
// statistics, isolated-node counts, component counts and hop diameters at
// the three operating ranges (r100 / r90 / r10 solved from a probe trace),
// plus the fraction of disconnections that are caused purely by isolated
// nodes — making the paper's "on the average disconnection is caused by only
// a few isolated nodes" quantitative.
//
// Expected: at r90 nearly all disconnections are isolate-only; at r10 the
// network fragments into real multi-node components and the hop diameter of
// the largest component grows.

#include "common/figure_bench.hpp"
#include "sim/mobile_trace.hpp"
#include "sim/snapshot_stats.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "ext_snapshot_metrics: degree/isolate/diameter structure at r100/r90/r10");
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();
  const double l = 4096.0;
  const std::size_t n = experiments::paper_node_count(l);
  const Box2 region(l);
  const MobilityConfig mobility = MobilityConfig::paper_waypoint(l);

  // Probe trace to solve the operating ranges.
  Rng probe_rng = rng.split();
  auto probe_model = make_mobility_model<2>(mobility, region);
  const auto probe =
      run_mobile_trace<2>(n, region, scale.steps, *probe_model, probe_rng);

  TextTable table({"operating range", "r", "mean degree", "min degree", "isolated",
                   "components", "LCC fraction", "LCC diameter", "isolate-only downs"});
  const std::pair<const char*, double> points[] = {
      {"r100", probe.range_for_time_fraction(1.0)},
      {"r90", probe.range_for_time_fraction(0.9)},
      {"r10", probe.range_for_time_fraction(0.1)},
  };
  for (const auto& [label, range] : points) {
    Rng point_rng = rng.split();
    auto model = make_mobility_model<2>(mobility, region);
    const auto stats =
        collect_snapshot_stats<2>(n, region, scale.steps, range, *model, point_rng);
    table.add_row({label, TextTable::num(range, 1),
                   TextTable::num(stats.mean_degree.mean(), 2),
                   TextTable::num(stats.min_degree.mean(), 2),
                   TextTable::num(stats.isolated_count.mean(), 2),
                   TextTable::num(stats.component_count.mean(), 2),
                   TextTable::num(stats.largest_fraction.mean(), 3),
                   TextTable::num(stats.largest_component_diameter.mean(), 2),
                   TextTable::num(stats.disconnection_by_isolates_fraction, 3)});
  }
  print_result(table, *options,
               "Extension — snapshot structure at the solved operating ranges "
               "(l=4096, n=64, random waypoint)",
               "Extension beyond the paper: no published reference series. See EXPERIMENTS.md.");
  return 0;
}
