// ABLATION bench: the boundary effect on the critical transmitting range.
//
// The paper deploys nodes in a bounded square [0, l]^2. Near the borders the
// expected number of neighbors halves (quarters in corners), so part of the
// required range pays for border-induced voids rather than intrinsic
// sparsity. Re-measuring the critical radius under the flat-torus metric
// (wrap-around distances, no borders) isolates that cost.
//
// Expected: the Euclidean-over-torus ratio of critical ranges is
// consistently above 1 and grows toward the high quantiles (the worst
// deployments are worst *because* of border voids); the asymptotic theory
// the paper compares against [4, 7] is typically derived in such
// boundary-free settings.

#include "common/figure_bench.hpp"
#include "sim/deployment.hpp"
#include "support/stats.hpp"
#include "topology/critical_range.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "ablation_boundary: Euclidean vs torus critical range");
  if (!options) return 0;

  Rng rng(options->seed);
  const std::size_t deployments = options->scale().stationary_trials;

  TextTable table({"l", "n", "mean rc (euclid)", "mean rc (torus)", "mean ratio",
                   "q95 ratio"});
  for (double l : experiments::figure_l_values()) {
    const std::size_t n = experiments::paper_node_count(l);
    const Box2 region(l);
    Rng point_rng = rng.split();

    RunningStats euclid;
    RunningStats torus;
    std::vector<double> euclid_values;
    std::vector<double> torus_values;
    for (std::size_t t = 0; t < deployments; ++t) {
      const auto points = uniform_deployment(n, region, point_rng);
      const double rc_euclid = critical_range<2>(points);
      const double rc_torus = torus_critical_range<2>(points, l);
      euclid.add(rc_euclid);
      torus.add(rc_torus);
      euclid_values.push_back(rc_euclid);
      torus_values.push_back(rc_torus);
    }
    std::sort(euclid_values.begin(), euclid_values.end());
    std::sort(torus_values.begin(), torus_values.end());
    const double q95_ratio =
        quantile_sorted(euclid_values, 0.95) / quantile_sorted(torus_values, 0.95);

    const std::string l_text = l_label(l);
    table.add_row({l_text, std::to_string(n), TextTable::num(euclid.mean(), 1),
                   TextTable::num(torus.mean(), 1),
                   TextTable::num(euclid.mean() / torus.mean(), 3),
                   TextTable::num(q95_ratio, 3)});
  }
  print_result(table, *options,
               "Ablation — boundary effect: critical range, bounded square vs torus",
               "Ablation beyond the paper: bounded square vs flat torus. See EXPERIMENTS.md.");
  return 0;
}
