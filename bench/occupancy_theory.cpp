// Section 2 validation tables: the occupancy-theory toolkit the paper's
// analysis stands on (Kolchin, Sevast'yanov & Chistyakov).
//
//  (A) Moments: exact E[mu]/Var[mu] vs the Theorem 1 asymptotics vs
//      Monte-Carlo, across the five growth domains. Expected: the
//      asymptotics track the exact values closely (relative error shrinking
//      with C), and Theorem 1's bound E[mu] <= C e^{-n/C} always holds.
//
//  (B) Limit laws (Theorem 2): the empirical distribution of mu matches the
//      domain's law — Normal in CD/RHID/LHID, Poisson in the RHD, shifted
//      Poisson in the LHD (checked through mean/variance signatures:
//      a Poisson's variance equals its mean).
//
//  (C) Lemma 2: P(10*1 | mu = k) -> 1 for 0 < k << C.

#include <cmath>

#include "common/figure_bench.hpp"
#include "occupancy/gap_pattern.hpp"
#include "occupancy/occupancy.hpp"
#include "support/stats.hpp"

namespace {

using namespace manet;
using namespace manet::bench;

struct MuSample {
  RunningStats stats;
};

MuSample simulate_mu(std::uint64_t n, std::uint64_t C, std::size_t trials, Rng& rng) {
  MuSample sample;
  std::vector<bool> occupied(C);
  for (std::size_t t = 0; t < trials; ++t) {
    std::fill(occupied.begin(), occupied.end(), false);
    for (std::uint64_t b = 0; b < n; ++b) occupied[rng.uniform_index(C)] = true;
    std::size_t empty = 0;
    for (bool o : occupied) {
      if (!o) ++empty;
    }
    sample.stats.add(static_cast<double>(empty));
  }
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "occupancy_theory: Theorems 1-2 and Lemma 2 validation tables");
  if (!options) return 0;

  Rng rng(options->seed);
  const std::size_t trials = options->scale().stationary_trials * 20;

  // Representative (n, C) pairs, one per domain, C = 4096.
  const std::uint64_t C = 4096;
  const auto sqrt_c = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(C)));
  const auto c_log_c = static_cast<std::uint64_t>(
      static_cast<double>(C) * std::log(static_cast<double>(C)));
  const std::vector<std::uint64_t> n_values = {sqrt_c, C / 16, C, 4 * C, c_log_c};

  // ---- (A) Moments across domains. ----------------------------------------
  TextTable moments({"n", "domain", "E exact", "E asym", "E sim", "bound ok", "Var exact",
                     "Var asym", "Var sim"});
  std::vector<MuSample> samples;
  for (std::uint64_t n : n_values) {
    Rng point_rng = rng.split();
    const auto domain = occupancy::classify_domain(n, C);
    const MuSample sample = simulate_mu(n, C, trials, point_rng);
    samples.push_back(sample);
    const double e_exact = occupancy::expected_empty_cells(n, C);
    const bool bound_ok = e_exact <= occupancy::expected_empty_cells_upper_bound(n, C) + 1e-9;
    moments.add_row({std::to_string(n), occupancy::domain_name(domain),
                     TextTable::num(e_exact, 3),
                     TextTable::num(occupancy::expected_empty_cells_asymptotic(n, C), 3),
                     TextTable::num(sample.stats.mean(), 3), bound_ok ? "yes" : "NO",
                     TextTable::num(occupancy::variance_empty_cells(n, C), 3),
                     TextTable::num(occupancy::variance_empty_cells_asymptotic(n, C), 3),
                     TextTable::num(sample.stats.variance(), 3)});
  }
  print_result(moments, *options,
               "Theorem 1 (A) — moments of mu(n, C), C = 4096, exact vs asymptotic vs "
               "simulation");

  // ---- (B) Limit-law signatures (Theorem 2). -------------------------------
  TextTable laws({"n", "domain", "limit law", "law location", "sim mean(shifted)",
                  "law Var", "sim Var", "Var/mean (Poisson=1)"});
  for (std::size_t i = 0; i < n_values.size(); ++i) {
    const std::uint64_t n = n_values[i];
    const auto law = occupancy::limit_law(n, C);
    const MuSample& sample = samples[i];

    std::string kind;
    double location = law.location;
    double variance = 0.0;
    double sim_mean = sample.stats.mean();
    switch (law.kind) {
      case occupancy::LimitLaw::Kind::kNormal:
        kind = "Normal";
        variance = law.scale * law.scale;
        break;
      case occupancy::LimitLaw::Kind::kPoisson:
        kind = "Poisson";
        variance = law.location;
        break;
      case occupancy::LimitLaw::Kind::kShiftedPoisson:
        kind = "Poisson(shifted)";
        variance = law.location;
        sim_mean -= law.shift;  // law describes mu - (C - n)
        break;
    }
    laws.add_row({std::to_string(n), occupancy::domain_name(occupancy::classify_domain(n, C)),
                  kind, TextTable::num(location, 3), TextTable::num(sim_mean, 3),
                  TextTable::num(variance, 3), TextTable::num(sample.stats.variance(), 3),
                  TextTable::num(sample.stats.variance() /
                                     std::max(1e-12, sample.stats.mean()), 3)});
  }
  print_result(laws, *options, "Theorem 2 (B) — limit-law signatures per domain");

  // ---- (C) Lemma 2 limit. ---------------------------------------------------
  TextTable lemma({"C", "k = C/10", "P(10*1 | mu=k)"});
  for (std::uint64_t c : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    lemma.add_row({std::to_string(c), std::to_string(c / 10),
                   TextTable::num(gap_pattern::pattern_probability_given_empty(c, c / 10), 6)});
  }
  print_result(lemma, *options,
               "Lemma 2 (C) — P(10*1 | mu = k) -> 1 as C grows with 0 < k << C");
  return 0;
}
