// Section 3 validation table: the 1-dimensional connectivity threshold of
// Theorem 5 — with 1 << r << l, the communication graph of n uniform nodes
// on [0, l] is a.a.s. connected iff r*n is Omega(l log l).
//
// Three experiments in one binary:
//
//  (A) Threshold sweep: P(connected) and P(10*1 pattern) as a function of
//      beta where r = beta * l ln(l) / n. Expected: P(connected) climbs
//      through the threshold band and approaches 1 for beta past ~1, while
//      the Lemma 1 pattern probability dies out; sharper for larger l.
//
//  (B) Gap regime (Theorem 4): r*n = l * f(l) with 1 << f(l) = sqrt(ln l)
//      << ln l. Expected: P(10*1 pattern) stays bounded away from zero as l
//      grows — the epsilon that kills a.a.s. connectivity.
//
//  (C) The Section 3 closing comparison for n proportional to l: worst-case
//      Omega(l), random Theta(log l), best-case Theta(1) ranges.

#include <cmath>

#include "common/figure_bench.hpp"
#include "core/theory.hpp"
#include "occupancy/exact_1d.hpp"
#include "occupancy/gap_pattern.hpp"
#include "sim/deployment.hpp"
#include "topology/critical_range.hpp"

namespace {

using namespace manet;
using namespace manet::bench;

double probability_connected_1d(double l, std::size_t n, double r, std::size_t trials,
                                Rng& rng) {
  const Box1 line(l);
  std::size_t connected = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    if (critical_range<1>(points) <= r) ++connected;
  }
  return static_cast<double>(connected) / static_cast<double>(trials);
}

double probability_pattern_1d(double l, std::size_t n, double r, std::size_t trials,
                              Rng& rng) {
  const Box1 line(l);
  const auto cells = static_cast<std::size_t>(l / r);
  if (cells < 2) return 0.0;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto points = uniform_deployment(n, line, rng);
    if (gap_pattern::has_gap_pattern(gap_pattern::occupancy_bits(points, l, cells))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "theorem5_1d: the 1-D connectivity threshold r*n = Theta(l log l)");
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();
  const std::size_t trials = scale.stationary_trials;

  // ---- (A) Threshold sweep over beta for two system sizes. ----------------
  TextTable sweep(
      {"l", "n", "beta", "r", "regime", "P(conn) exact", "P(conn) sim", "P(10*1)"});
  for (double l : {4096.0, 65536.0}) {
    const auto n = static_cast<std::size_t>(std::sqrt(l));
    for (double beta : {0.2, 0.5, 0.8, 1.0, 1.5, 2.0}) {
      const double r =
          theory::connectivity_threshold_range_1d(l, static_cast<double>(n), beta);
      Rng point_rng = rng.split();
      const double p_conn = probability_connected_1d(l, n, r, trials, point_rng);
      const double p_pattern = probability_pattern_1d(l, n, r, trials, point_rng);
      const double p_exact = exact_1d::probability_connected(n, r, l);
      sweep.add_row({TextTable::num(l, 0), std::to_string(n), TextTable::num(beta, 2),
                     TextTable::num(r, 1),
                     theory::regime_name(
                         theory::classify_regime_1d(l, static_cast<double>(n), r)),
                     TextTable::num(p_exact, 3), TextTable::num(p_conn, 3),
                     TextTable::num(p_pattern, 3)});
    }
  }
  print_result(sweep, *options,
               "Theorem 5 (A) — P(connected) across the threshold r = beta*l*ln(l)/n");

  // ---- (B) Theorem 4's gap regime: epsilon stays positive. ----------------
  TextTable gap({"l", "n", "f(l)=sqrt(ln l)", "r", "P(10*1) exact", "P(10*1) sim",
                 "P(connected)"});
  for (double l : {1024.0, 4096.0, 16384.0, 65536.0}) {
    const auto n = static_cast<std::size_t>(std::sqrt(l));
    const double f = std::sqrt(std::log(l));
    const double r = l * f / static_cast<double>(n);  // r*n = l*f(l), gap regime
    const auto cells = static_cast<std::uint64_t>(l / r);
    Rng point_rng = rng.split();
    const double exact =
        cells >= 2 ? gap_pattern::pattern_probability(n, cells) : 0.0;
    const double simulated = probability_pattern_1d(l, n, r, trials, point_rng);
    const double p_conn = probability_connected_1d(l, n, r, trials, point_rng);
    gap.add_row({TextTable::num(l, 0), std::to_string(n), TextTable::num(f, 2),
                 TextTable::num(r, 1), TextTable::num(exact, 3),
                 TextTable::num(simulated, 3), TextTable::num(p_conn, 3)});
  }
  print_result(gap, *options,
               "Theorem 4 (B) — the {10*1} probability persists in l << rn << l log l");

  // ---- (C) Worst / random / best case comparison, n proportional to l. ----
  TextTable compare({"l", "n=l/4", "worst case r", "random (Thm 5) r", "best case r"});
  for (double l : {256.0, 1024.0, 4096.0, 16384.0}) {
    const double n = l / 4.0;
    compare.add_row({TextTable::num(l, 0), TextTable::num(n, 0),
                     TextTable::num(theory::worst_case_range(l, 1), 0),
                     TextTable::num(theory::connectivity_threshold_range_1d(l, n), 2),
                     TextTable::num(theory::best_case_range_1d(l, n), 2)});
  }
  print_result(compare, *options,
               "Section 3 (C) — worst-case Omega(l) vs random Theta(log l) vs best-case "
               "Theta(1), n = l/4");
  return 0;
}
