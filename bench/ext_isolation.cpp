// EXTENSION bench: is disconnection really "caused by a few isolated
// nodes"? (Sections 1 and 4.2.)
//
// For random geometric graphs, Penrose's theorem says the connectivity
// threshold asymptotically coincides with the isolated-node-elimination
// threshold: the last obstacle to connectivity is a lone node, not a split
// into large pieces. This bench measures, for the paper's (l, n = sqrt(l))
// deployments:
//   - the fraction of deployments whose critical range EQUALS the isolation
//     range (the largest nearest-neighbor distance),
//   - the mean ratio isolation range / critical range,
// in both the bounded square and the boundary-free torus.
//
// Expected: the equality fraction grows with l and is higher on the torus
// (border voids sometimes disconnect whole groups); the ratio tends to 1 —
// the structural fact behind the paper's observation that at r90 the
// network loses only a few isolated nodes.

#include "common/figure_bench.hpp"
#include "sim/deployment.hpp"
#include "support/stats.hpp"
#include "topology/critical_range.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "ext_isolation: critical range vs isolated-node-elimination range");
  if (!options) return 0;

  Rng rng(options->seed);
  const std::size_t deployments = options->scale().stationary_trials;

  TextTable table({"l", "n", "P(rc == r_isolation)", "mean ratio", "q05 ratio"});
  for (double l : experiments::figure_l_values()) {
    const std::size_t n = experiments::paper_node_count(l);
    const Box2 region(l);
    Rng point_rng = rng.split();

    std::size_t equal = 0;
    RunningStats ratio;
    std::vector<double> ratios;
    for (std::size_t t = 0; t < deployments; ++t) {
      const auto points = uniform_deployment(n, region, point_rng);
      const double rc = critical_range<2>(points);
      const double iso = isolation_range<2>(points);
      if (iso >= rc * (1.0 - 1e-12)) ++equal;
      ratio.add(iso / rc);
      ratios.push_back(iso / rc);
    }
    std::sort(ratios.begin(), ratios.end());

    const std::string l_text = l_label(l);
    table.add_row({l_text, std::to_string(n),
                   TextTable::num(static_cast<double>(equal) /
                                      static_cast<double>(deployments), 3),
                   TextTable::num(ratio.mean(), 3),
                   TextTable::num(quantile_sorted(ratios, 0.05), 3)});
  }
  print_result(table, *options,
               "Extension — Penrose check: does the isolated-node threshold equal the "
               "connectivity threshold?",
               "Extension beyond the paper: Penrose-style check of the isolated-node threshold.\n"
               "See EXPERIMENTS.md.");
  return 0;
}
