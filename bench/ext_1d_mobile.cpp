// EXTENSION bench: MTRM on a 1-dimensional (freeway) network.
//
// The paper analyses d = 1 only in the stationary case (Section 3) and
// simulates mobility only for d = 2, noting that "further investigation ...
// is a matter of ongoing research". The library's stack is dimension-
// generic, so this bench runs the mobile experiment on the freeway: cars on
// [0, l] under 1-D random waypoint motion, reporting the same
// r_x/r_stationary ratios as Figure 2 plus the Theorem 5 prediction for the
// stationary reference.
//
// Expected: the same qualitative structure as in 2-D (r100 above
// r_stationary, large savings at r90/r10), with the stationary reference
// tracking the Theorem 5 scale c * l * ln(l) / n.

#include <cmath>

#include "common/figure_bench.hpp"
#include "core/theory.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "ext_1d_mobile: MTRM for a 1-D freeway network (extension)");
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();

  TextTable table({"l", "n", "rs (measured)", "rs / (l ln l / n)", "r100/rs", "r90/rs",
                   "r10/rs", "r0/rs"});
  for (double l : experiments::figure_l_values()) {
    const std::size_t n = experiments::paper_node_count(l);
    const Box1 line(l);
    Rng point_rng = rng.split();

    // Stationary reference (same convention as the 2-D benches).
    MtrOptions mtr_options;
    mtr_options.trials = scale.stationary_trials;
    mtr_options.target_probability = options->rs_quantile;
    const double rs = estimate_mtr<1>(n, line, mtr_options, point_rng).range;

    MtrmConfig config;
    config.node_count = n;
    config.side = l;
    config.mobility = MobilityConfig::paper_waypoint(l);
    config.component_fractions.clear();
    apply_scale(config, *options);
    const MtrmResult result = solve_mtrm<1>(config, point_rng);

    const double theorem5 =
        theory::connectivity_threshold_range_1d(l, static_cast<double>(n));
    const std::string l_text = l_label(l);
    table.add_row({l_text, std::to_string(n), TextTable::num(rs, 1),
                   TextTable::num(rs / theorem5, 3),
                   TextTable::num(result.range_for_time[0].mean() / rs, 3),
                   TextTable::num(result.range_for_time[1].mean() / rs, 3),
                   TextTable::num(result.range_for_time[2].mean() / rs, 3),
                   TextTable::num(result.range_never_connected.mean() / rs, 3)});
  }
  print_result(table, *options, "Extension — MTRM on the 1-D freeway (random waypoint)",
               "Extension beyond the paper (1-D mobile case). rs column is checked against the\n"
               "Theorem 5 scale l*ln(l)/n. See EXPERIMENTS.md.");
  return 0;
}
