// ABLATION bench: homogeneous vs per-node range assignment.
//
// The paper motivates MTR through energy ("determining an appropriate
// transmitting range ... is essential to minimize energy consumption") and
// points at topology-control protocols [6, 9, 10] that adjust ranges
// per-node at run time. This ablation quantifies what the homogeneous-range
// assumption costs: for the paper's (l, n = sqrt(l)) deployments it compares
// the total energy of (a) every node at the critical range (the paper's
// model) against (b) the MST-based per-node assignment, at path-loss
// exponents alpha = 2 and 4.
//
// Expected: per-node assignment saves a large, l-stable fraction (~60-75% at
// alpha = 2), because the homogeneous range is dictated by the single worst
// MST bottleneck while most nodes only need much shorter links.

#include "common/figure_bench.hpp"
#include "sim/deployment.hpp"
#include "support/stats.hpp"
#include "topology/range_assignment.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv,
      "ablation_range_assignment: homogeneous vs MST per-node range energy");
  if (!options) return 0;

  Rng rng(options->seed);
  const std::size_t deployments = options->scale().stationary_trials;

  TextTable table({"l", "n", "savings a=2 (mean)", "savings a=2 (min)", "savings a=4 (mean)",
                   "max-range ratio"});
  for (double l : experiments::figure_l_values()) {
    const std::size_t n = experiments::paper_node_count(l);
    const Box2 region(l);
    Rng point_rng = rng.split();

    RunningStats savings2;
    RunningStats savings4;
    RunningStats max_range_ratio;
    for (std::size_t t = 0; t < deployments; ++t) {
      const auto points = uniform_deployment(n, region, point_rng);
      savings2.add(per_node_assignment_savings<2>(points, 2.0));
      savings4.add(per_node_assignment_savings<2>(points, 4.0));
      const auto per_node = mst_assignment<2>(points);
      const auto homogeneous = homogeneous_assignment<2>(points);
      max_range_ratio.add(per_node.max_range() / homogeneous.max_range());
    }

    const std::string l_text = l_label(l);
    table.add_row({l_text, std::to_string(n), TextTable::num(savings2.mean(), 3),
                   TextTable::num(savings2.min(), 3), TextTable::num(savings4.mean(), 3),
                   TextTable::num(max_range_ratio.mean(), 3)});
  }
  print_result(table, *options,
               "Ablation — energy saved by per-node (MST) ranges vs the paper's "
               "homogeneous range",
               "Ablation beyond the paper: per-node (MST) vs homogeneous ranges. See EXPERIMENTS.md.");
  return 0;
}
