// EXTENSION bench: the (n, r) connectivity phase diagram.
//
// Section 2 stresses that the MTR solutions "specify requirements on the
// product of n and r^d", serving both the minimum-range and the
// minimum-node-count formulations. This bench prints P(connected) over a
// grid of node counts and ranges (2-D, fixed l), making the phase boundary
// visible, and solves the dimensioning problem (minimum n for a fixed radio
// range) along one column via core/dimensioning.hpp.
//
// Expected: an (n, r) staircase — larger n tolerates smaller r — with the
// boundary roughly following n * r^2 ~ const * l^2 log(n)-shaped level sets.

#include <cmath>

#include "common/figure_bench.hpp"
#include "core/dimensioning.hpp"
#include "sim/stationary_sample.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "phase_diagram: P(connected) over the (n, r) grid, l = 1024");
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();
  const double l = 1024.0;
  const Box2 region(l);

  const std::vector<std::size_t> node_counts = {8, 16, 32, 64, 128, 256};
  const std::vector<double> range_fractions = {0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5};

  // --- Phase diagram. -------------------------------------------------------
  std::vector<std::string> headers = {"n \\ r"};
  for (double f : range_fractions) headers.push_back(TextTable::num(f * l, 0));
  TextTable grid(headers);

  for (std::size_t n : node_counts) {
    Rng row_rng = rng.split();
    const auto sample =
        sample_stationary_critical_ranges<2>(n, region, scale.stationary_trials, row_rng);
    std::vector<std::string> row = {std::to_string(n)};
    for (double f : range_fractions) {
      row.push_back(TextTable::num(sample.probability_connected(f * l), 2));
    }
    grid.add_row(std::move(row));
  }
  print_result(grid, *options, "Extension — P(connected), l = 1024, n vs r",
               "Extension beyond the paper: the (n, r) phase diagram / dimensioning view.\n"
               "See EXPERIMENTS.md.");

  // --- Dimensioning column: minimum n for fixed radio ranges. ---------------
  TextTable dimension({"fixed range r", "min n for P>=0.95", "achieved P", "n*r^2 / l^2"});
  DimensioningOptions dim_options;
  dim_options.trials = scale.stationary_trials;
  dim_options.target_probability = 0.95;
  for (double f : {0.2, 0.3, 0.4, 0.5}) {
    const double range = f * l;
    Rng point_rng = rng.split();
    const DimensioningResult result =
        minimum_node_count<2>(range, region, dim_options, point_rng);
    dimension.add_row({TextTable::num(range, 0), std::to_string(result.node_count),
                       TextTable::num(result.achieved_probability, 3),
                       TextTable::num(static_cast<double>(result.node_count) * range *
                                          range / (l * l), 3)});
  }
  print_result(dimension, *options,
               "Extension — dimensioning: minimum node count for a fixed transceiver "
               "range (the paper's alternate MTR formulation)",
               "Extension beyond the paper: the (n, r) phase diagram / dimensioning view.\n"
               "See EXPERIMENTS.md.");
  return 0;
}
