// Dense-Prim vs grid-engine EMST benchmark (the mobile hot path's inner
// solve): an n sweep at the paper's l = 1024 region, reported as JSON.
//
// Because the whole point of the grid engine is that it changes NOTHING but
// the running time, the bench re-verifies on every measured point set that
// both paths produce bitwise-equal bottlenecks (= critical ranges) and
// equal sorted edge-weight multisets, and exits nonzero on any mismatch —
// a speedup that moves the simulation output is a bug, not a speedup.
//
// The bench also counts heap allocations (global operator new replacement)
// during a warm engine solve, reporting the steady-state allocations per
// mobility-step-equivalent solve; the zero-allocation workspace contract
// (sim/trace_workspace.hpp) shows up here as 0.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "geometry/box.hpp"
#include "sim/deployment.hpp"
#include "support/bench_json.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "topology/emst_grid.hpp"
#include "topology/mst.hpp"

namespace {

// Single-threaded bench: a plain counter is enough.
std::size_t g_news = 0;
bool g_counting = false;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_news;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace manet;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<double> sorted_weights(std::span<const WeightedEdge> edges) {
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (const auto& edge : edges) weights.push_back(edge.weight);
  std::sort(weights.begin(), weights.end());
  return weights;
}

bool bitwise_equal(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool with_metrics = false;
  std::uint64_t seed = 1;
  int sets = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--metrics") {
      with_metrics = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--sets" && i + 1 < argc) {
      sets = std::stoi(argv[++i]);
    } else {
      std::printf("usage: %s [--quick] [--metrics] [--seed S] [--sets K]\n", argv[0]);
      return arg == "--help" ? 0 : 1;
    }
  }

  const double side = 1024.0;  // the paper's 2-D region
  const Box2 box(side);
  std::vector<std::size_t> n_sweep = {256, 1024, 2048, 4096};
  if (quick) n_sweep = {256, 1024};

  Rng rng(seed);
  bool identical = true;

  // Everything below emits through the shared bench/figure JSON schema
  // (support/bench_json.hpp) so results/BENCH_mst.json diffs uniformly
  // against every other perf artifact.
  BenchReport report("emst_grid_vs_dense");
  report.add_param("d", JsonValue::number(std::size_t{2}));
  report.add_param("l", JsonValue::number(side));
  report.add_param("seed", JsonValue::string(hex_u64(seed)));
  report.add_param("point_sets", JsonValue::number(static_cast<std::size_t>(sets)));
  report.add_param("dense", JsonValue::string("mst_with_metric (Prim, O(n^2))"));
  report.add_param("grid", JsonValue::string("EmstEngine (filtered Kruskal, adaptive radius)"));

  for (std::size_t idx = 0; idx < n_sweep.size(); ++idx) {
    const std::size_t n = n_sweep[idx];
    // One engine per n, warmed on the first set: the steady-state timing is
    // what the mobile step loop sees.
    EmstEngine<2> engine;
    double dense_seconds = 0.0;
    double grid_seconds = 0.0;
    std::size_t rounds = 0;
    std::size_t candidate_edges = 0;
    std::size_t steady_allocs = 0;
    // More grid repetitions per measurement: a grid solve is ~100x shorter
    // than a dense solve, so it needs more iterations for a stable clock.
    const int grid_reps = 10;

    for (int set = 0; set < sets; ++set) {
      const auto points = uniform_deployment(n, box, rng);

      const double dense_start = now_seconds();
      const auto dense = euclidean_mst<2>(points);
      dense_seconds += now_seconds() - dense_start;

      engine.euclidean(points, box);  // warm the pools for this point set
      g_news = 0;
      g_counting = true;
      const double grid_start = now_seconds();
      for (int rep = 0; rep < grid_reps; ++rep) engine.euclidean(points, box);
      grid_seconds += (now_seconds() - grid_start) / grid_reps;
      g_counting = false;
      steady_allocs = g_news / static_cast<std::size_t>(grid_reps);

      const auto grid = engine.euclidean(points, box);
      rounds = engine.stats().rounds;
      candidate_edges = engine.stats().candidate_edges;

      if (!bitwise_equal(tree_bottleneck(dense), tree_bottleneck(grid))) identical = false;
      const auto dense_w = sorted_weights(dense);
      const auto grid_w = sorted_weights(grid);
      if (dense_w.size() != grid_w.size()) {
        identical = false;
      } else {
        for (std::size_t i = 0; i < dense_w.size(); ++i) {
          if (!bitwise_equal(dense_w[i], grid_w[i])) identical = false;
        }
      }
    }

    dense_seconds /= sets;
    grid_seconds /= sets;
    JsonValue sample = JsonValue::object();
    sample.set("n", JsonValue::number(n));
    sample.set("dense_seconds", JsonValue::number(dense_seconds));
    sample.set("grid_seconds", JsonValue::number(grid_seconds));
    sample.set("speedup", JsonValue::number(dense_seconds / grid_seconds));
    sample.set("doubling_rounds", JsonValue::number(rounds));
    sample.set("candidate_edges", JsonValue::number(candidate_edges));
    sample.set("steady_state_allocs_per_solve", JsonValue::number(steady_allocs));
    report.add_sample(std::move(sample));
  }

  report.add_extra("bottlenecks_bit_identical", JsonValue::boolean(identical));
  report.add_param("manet_metrics", JsonValue::boolean(metrics::compiled_in()));
  if (with_metrics) report.add_extra("metrics", metrics::collect_json());
  std::printf("%s\n", report.dump().c_str());

  if (!identical) {
    std::fprintf(stderr, "FATAL: grid EMST diverged from the dense path\n");
    return 1;
  }
  return 0;
}
