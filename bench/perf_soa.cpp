// SoA kernel microbench: the batched distance kernels of geometry/
// distance_kernels.hpp against the scalar cores they must reproduce, over
// batch sizes spanning the cell-run lengths of small traces up to the
// n >= 10^5 regime the SoA layer targets.
//
// Like perf_mst / perf_kinetic, this bench doubles as a value-identity gate:
// for every kernel, size and dimension it first verifies that the dispatched
// batch output is bit-identical to the scalar core element by element, and
// exits nonzero on the first divergence — a faster kernel that moves one bit
// of any distance is a bug, not a speedup. The timing section then reports
// scalar vs batched throughput and their ratio.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "geometry/distance_kernels.hpp"
#include "geometry/point.hpp"
#include "geometry/point_store.hpp"
#include "support/bench_json.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace {

using namespace manet;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Folds a double buffer into an FNV-1a digest — keeps the optimizer from
/// discarding the timed work and gives the report a content fingerprint.
std::uint64_t fold_doubles(const std::vector<double>& values, std::uint64_t hash) {
  for (const double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= kFnv1aPrime;
    }
  }
  return hash;
}

template <int D>
PointStore<D> random_store(std::size_t n, double lo, double hi, Rng& rng) {
  PointStore<D> store;
  store.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    Point<D> p;
    for (int i = 0; i < D; ++i) p.coords[static_cast<std::size_t>(i)] = rng.uniform(lo, hi);
    store.set(k, p);
  }
  return store;
}

struct KernelRun {
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  bool identical = true;
  std::uint64_t digest = kFnv1aOffset;
};

/// Times `scalar(out)` vs `batch(out)` over `reps` repetitions after checking
/// the two produce bitwise-equal buffers.
template <typename Scalar, typename Batch>
KernelRun time_kernel(std::size_t n, std::size_t reps, Scalar&& scalar, Batch&& batch) {
  KernelRun run;
  std::vector<double> scalar_out(n), batch_out(n);
  scalar(scalar_out.data());
  batch(batch_out.data());
  run.identical =
      std::memcmp(scalar_out.data(), batch_out.data(), n * sizeof(double)) == 0;
  run.digest = fold_doubles(batch_out, run.digest);

  double start = now_seconds();
  for (std::size_t r = 0; r < reps; ++r) scalar(scalar_out.data());
  run.scalar_seconds = now_seconds() - start;
  run.digest = fold_doubles(scalar_out, run.digest);

  start = now_seconds();
  for (std::size_t r = 0; r < reps; ++r) batch(batch_out.data());
  run.batch_seconds = now_seconds() - start;
  run.digest = fold_doubles(batch_out, run.digest);
  return run;
}

template <int D>
void bench_dimension(BenchReport& report, const std::vector<std::size_t>& sizes, bool quick,
                     bool& all_identical) {
  Rng rng(0x50A0u + static_cast<std::uint64_t>(D));
  const double side = 1024.0;
  for (const std::size_t n : sizes) {
    PointStore<D> a = random_store<D>(n, 0.0, side, rng);
    PointStore<D> b = random_store<D>(n, 0.0, side, rng);
    // The scalar reference iterates the interleaved AoS layout the engines
    // used before this layer existed — that's the loop the batch kernels
    // replaced, so scalar-vs-batch here measures layout + SIMD together.
    std::vector<Point<D>> a_aos(n), b_aos(n);
    a.scatter_to(a_aos);
    b.scatter_to(b_aos);
    Point<D> q;
    for (int i = 0; i < D; ++i) q.coords[static_cast<std::size_t>(i)] = rng.uniform(0.0, side);

    // Size the repetition count so every (kernel, n) cell streams the same
    // total element volume, keeping per-cell wall time comparable.
    const std::size_t volume = quick ? (std::size_t{1} << 18) : (std::size_t{1} << 22);
    const std::size_t reps = std::max<std::size_t>(1, volume / n);
    const auto axes_a = a.axes();
    const auto axes_b = b.axes();

    const struct {
      const char* kernel;
      KernelRun run;
    } runs[] = {
        {"squared_distance",
         time_kernel(
             n, reps,
             [&](double* out) {
               for (std::size_t k = 0; k < n; ++k) {
                 out[k] = squared_distance(a_aos[k], q);
               }
             },
             [&](double* out) {
               kernels::batch_squared_distance<D>(axes_a, n, q.coords.data(), out);
             })},
        {"torus_squared_distance",
         time_kernel(
             n, reps,
             [&](double* out) {
               for (std::size_t k = 0; k < n; ++k) {
                 out[k] = kernels::torus_squared_distance_scalar<D>(a_aos[k].coords.data(),
                                                                    q.coords.data(), side);
               }
             },
             [&](double* out) {
               kernels::batch_torus_squared_distance<D>(axes_a, n, q.coords.data(), side, out);
             })},
        {"pair_distance",
         time_kernel(
             n, reps,
             [&](double* out) {
               for (std::size_t k = 0; k < n; ++k) out[k] = distance(a_aos[k], b_aos[k]);
             },
             [&](double* out) { kernels::batch_pair_distance<D>(axes_a, axes_b, n, out); })},
    };

    for (const auto& entry : runs) {
      if (!entry.run.identical) all_identical = false;
      JsonValue sample = JsonValue::object();
      sample.set("kernel", JsonValue::string(entry.kernel));
      sample.set("d", JsonValue::number(std::size_t{D}));
      sample.set("n", JsonValue::number(n));
      sample.set("reps", JsonValue::number(reps));
      sample.set("scalar_seconds", JsonValue::number(entry.run.scalar_seconds));
      sample.set("batch_seconds", JsonValue::number(entry.run.batch_seconds));
      sample.set("speedup", JsonValue::number(entry.run.scalar_seconds /
                                              std::max(entry.run.batch_seconds, 1e-12)));
      sample.set("bit_identical", JsonValue::boolean(entry.run.identical));
      sample.set("digest", JsonValue::string(hex_u64(entry.run.digest)));
      report.add_sample(std::move(sample));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      std::printf("usage: %s [--quick]\n", argv[0]);
      return arg == "--help" ? 0 : 1;
    }
  }

  std::vector<std::size_t> sizes = {64, 1024, 16384, 131072};
  if (quick) sizes = {64, 1024};

  BenchReport report("soa_kernels_vs_scalar");
  report.add_param("avx2", JsonValue::boolean(kernels::cpu_has_avx2()));
  report.add_param(
      "scalar",
      JsonValue::string("per-element scalar core over the interleaved AoS layout (pre-SoA path)"));
  report.add_param("batch", JsonValue::string("dispatched batch kernel (AVX2 when available)"));

  bool all_identical = true;
  bench_dimension<1>(report, sizes, quick, all_identical);
  bench_dimension<2>(report, sizes, quick, all_identical);
  bench_dimension<3>(report, sizes, quick, all_identical);

  report.add_extra("kernels_bit_identical", JsonValue::boolean(all_identical));
  std::printf("%s\n", report.dump().c_str());

  if (!all_identical) {
    std::fprintf(stderr, "FATAL: a batched kernel diverged bitwise from the scalar core\n");
    return 1;
  }
  return 0;
}
