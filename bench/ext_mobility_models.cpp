// EXTENSION bench (beyond the paper): a three-way mobility-model comparison.
//
// The paper's Section 4.2 headline is that random waypoint (intentional) and
// drunkard (random) motion yield almost the same connectivity statistics —
// "it is more the existence of mobility than the precise details of how
// nodes move that is significant". This bench stresses that claim with a
// third, structurally different pattern (random direction with boundary
// reflection, no pausing), printing all r_x/r_stationary series side by
// side at l = 4096, n = 64.
//
// Expected: the random-direction column lands in the same band as the other
// two if the paper's claim generalizes; its "quantity of mobility" is higher
// (no pause time), so mild upward deviations of r100 are expected.

#include "common/figure_bench.hpp"

namespace {

using namespace manet;
using namespace manet::bench;

MobilityConfig model_config(MobilityKind kind, double l) {
  switch (kind) {
    case MobilityKind::kRandomWaypoint:
      return MobilityConfig::paper_waypoint(l);
    case MobilityKind::kDrunkard:
      return MobilityConfig::paper_drunkard(l);
    case MobilityKind::kRandomDirection: {
      MobilityConfig config;
      config.kind = MobilityKind::kRandomDirection;
      config.direction.v_min = 0.1;
      config.direction.v_max = 0.01 * l;  // match the waypoint speed band
      config.direction.p_turn = 0.01;
      config.direction.p_stationary = 0.0;
      return config;
    }
    case MobilityKind::kStationary:
      return MobilityConfig::stationary();
  }
  return MobilityConfig::stationary();
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_figure_options(
      argc, argv,
      "ext_mobility_models: r_x/r_stationary for waypoint vs drunkard vs "
      "random-direction (extension)");
  if (!options) return 0;

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();
  const double l = 4096.0;
  const std::size_t n = experiments::paper_node_count(l);

  Rng stationary_rng = rng.split();
  const double rs =
      stationary_reference_range(l, n, scale.stationary_trials, options->rs_quantile,
                                 stationary_rng);

  TextTable table({"model", "r100/rs", "r90/rs", "r10/rs", "r0/rs", "rl50/rs"});
  for (MobilityKind kind : {MobilityKind::kRandomWaypoint, MobilityKind::kDrunkard,
                            MobilityKind::kRandomDirection}) {
    Rng point_rng = rng.split();
    MtrmConfig config;
    config.node_count = n;
    config.side = l;
    config.mobility = model_config(kind, l);
    config.component_fractions = {0.5};
    apply_scale(config, *options);
    const MtrmResult result = solve_mtrm<2>(config, point_rng);

    table.add_row({mobility_kind_name(kind),
                   TextTable::num(result.range_for_time[0].mean() / rs, 3),
                   TextTable::num(result.range_for_time[1].mean() / rs, 3),
                   TextTable::num(result.range_for_time[2].mean() / rs, 3),
                   TextTable::num(result.range_never_connected.mean() / rs, 3),
                   TextTable::num(result.range_for_component[0].mean() / rs, 3)});
  }
  print_result(table, *options,
               "Extension — mobility-model independence stress test (l=4096, n=64)",
               "Extension beyond the paper: no published reference series. See EXPERIMENTS.md.");
  return 0;
}
