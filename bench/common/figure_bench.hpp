#pragma once

#include <array>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/experiments.hpp"
#include "core/mtr.hpp"
#include "core/mtrm.hpp"
#include "service/drain.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace manet::bench {

/// Options shared by every figure-reproduction binary.
struct FigureOptions {
  Preset preset = Preset::kDefault;
  std::uint64_t seed = 2002;  // DSN 2002
  bool csv = false;
  /// Quantile of the stationary critical-radius distribution used as
  /// r_stationary. 0.95 calibrates our r100/r_stationary series onto the
  /// published Figure 2 almost exactly (see EXPERIMENTS.md).
  double rs_quantile = 0.95;
  /// Explicit overrides (win over the preset when set).
  std::optional<std::size_t> iterations;
  std::optional<std::size_t> steps;
  /// Worker threads for the parallel trial engine (support/parallel.hpp);
  /// 0 keeps the MANET_THREADS / hardware default, 1 forces the serial
  /// path. Results are bit-identical at any setting.
  std::size_t threads = 0;
  /// --metrics: append the run-metrics JSON (support/metrics.hpp, BenchReport
  /// schema) to stdout after the table. Opt-in so the default output stays
  /// exactly the table the smoke scripts compare.
  bool metrics = false;
  /// Campaign mode (--campaign flag family, campaign/cli.hpp): route the
  /// sweep through the crash-safe resumable runner. Only figures parsed with
  /// with_campaign=true register the flags.
  bool campaign = false;
  /// Campaign identity, derived from the summary prefix before ':'
  /// ("fig7_pstationary").
  std::string campaign_name;
  campaign::CampaignOptions campaign_options;
  /// Distributed mode (--distributed / --worker-id, service/cli.hpp): drain
  /// the campaign cooperatively through unit leases instead of running it
  /// single-process. Implies campaign mode.
  bool distributed = false;
  service::DrainOptions drain_options;

  ScaleParams scale() const {
    ScaleParams params = scale_for(preset);
    if (iterations) params.iterations = *iterations;
    if (steps) params.steps = *steps;
    return params;
  }
};

/// Registers the standard flags, parses argv, and prints help when asked.
/// Returns nullopt (after printing) when the program should exit.
/// `with_campaign` additionally registers the --campaign flag family
/// (campaign/cli.hpp); inconsistent campaign flags raise ConfigError, which
/// campaign-enabled figure mains catch and turn into exit code 1.
std::optional<FigureOptions> parse_figure_options(int argc, const char* const* argv,
                                                  const std::string& summary,
                                                  bool with_campaign = false);

/// Builds the sweep executor the parsed options ask for: nullptr (legacy
/// in-process sweep), a campaign::CampaignRunner (--campaign), or a
/// service::DistributedCampaignRunner (--distributed) that cooperatively
/// drains the same store alongside other workers. All three produce
/// bit-identical campaign artifacts; see DESIGN.md §16.
std::unique_ptr<MtrmSweepExecutor> make_sweep_executor(const FigureOptions& options);

/// r_stationary for n nodes in [0, l]^2 (DESIGN.md convention 1): the
/// `quantile` of the stationary critical-radius distribution.
double stationary_reference_range(double l, std::size_t n, std::size_t trials,
                                  double quantile, Rng& rng);

/// Applies the scale overrides to an experiment config.
void apply_scale(MtrmConfig& config, const FigureOptions& options);

/// Prints the table in text or CSV form per options, preceded by a header
/// line naming the experiment and scale. `footnote` is printed after the
/// table (empty = the standard paper-columns disclaimer; extension benches
/// without paper columns pass their own note).
void print_result(const TextTable& table, const FigureOptions& options,
                  const std::string& title, const std::string& footnote = "");

/// Formats a region side for table rows the way the paper labels its x axes
/// ("256", "1K", "4K", "16K").
std::string l_label(double l);

/// Approximate values read off a published figure, one per l in
/// {256, 1K, 4K, 16K}, used for side-by-side comparison columns.
struct PaperSeries {
  std::string label;
  std::array<double, 4> values;
};

/// Figures 2-3 runner: the ratios r100/r90/r10/r0 over r_stationary for
/// l in {256, 1K, 4K, 16K} under the given mobility configuration factory.
/// `paper` supplies the digitized reference series in the same order.
/// With a non-null `executor` the MTRM sweep goes through that runner
/// (resumable campaign or distributed drain — make_sweep_executor); the
/// stationary reference then draws from its own substream, so campaign-mode
/// numbers differ from (equally valid) legacy-mode ones — see DESIGN.md §11.
void run_ratio_figure(const FigureOptions& options, bool drunkard,
                      const std::string& title, const std::vector<PaperSeries>& paper,
                      MtrmSweepExecutor* executor = nullptr);

/// Figures 4-5 runner: the mean largest-connected-component fraction at
/// r90 / r10 / r0 for the same sweep.
void run_component_figure(const FigureOptions& options, bool drunkard,
                          const std::string& title, const std::vector<PaperSeries>& paper,
                          MtrmSweepExecutor* executor = nullptr);

}  // namespace manet::bench
