#include "common/figure_bench.hpp"

#include "campaign/cli.hpp"
#include "service/cli.hpp"
#include "support/bench_json.hpp"
#include "support/metrics.hpp"

namespace manet::bench {

namespace {

/// "fig7_pstationary: r100/..." -> "fig7_pstationary".
std::string campaign_name_from_summary(const std::string& summary) {
  const std::size_t colon = summary.find(':');
  return colon == std::string::npos ? summary : summary.substr(0, colon);
}

}  // namespace

std::optional<FigureOptions> parse_figure_options(int argc, const char* const* argv,
                                                  const std::string& summary,
                                                  bool with_campaign) {
  CliParser cli(summary);
  cli.add_option("preset", "simulation scale: quick | default | paper", "default");
  cli.add_option("seed", "random seed", "2002");
  cli.add_option("rs-quantile",
                 "stationary critical-radius quantile defining r_stationary", "0.95");
  cli.add_option("iterations", "override: independent runs per data point", "");
  cli.add_option("steps", "override: mobility steps per run", "");
  cli.add_option("threads",
                 "worker threads for the trial engine (0 = MANET_THREADS / "
                 "hardware default, 1 = serial; results are identical)",
                 "0");
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  cli.add_flag("metrics",
               "append the run-metrics JSON (counters/timings) after the table");
  if (with_campaign) {
    campaign::add_campaign_cli_options(cli);
    service::add_drain_cli_options(cli);
  }

  try {
    cli.parse(argc, argv);
  } catch (const ConfigError& error) {
    std::cerr << error.what() << '\n';
    return std::nullopt;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return std::nullopt;
  }

  FigureOptions options;
  options.preset = parse_preset(cli.string_value("preset"));
  options.seed = cli.uint_value("seed");
  options.csv = cli.flag("csv");
  options.metrics = cli.flag("metrics");
  options.rs_quantile = cli.double_value("rs-quantile");
  if (!(options.rs_quantile > 0.0 && options.rs_quantile <= 1.0)) {
    std::cerr << "--rs-quantile must be in (0, 1]\n";
    return std::nullopt;
  }
  if (cli.was_set("iterations")) {
    options.iterations = static_cast<std::size_t>(cli.uint_value("iterations"));
  }
  if (cli.was_set("steps")) {
    options.steps = static_cast<std::size_t>(cli.uint_value("steps"));
  }
  options.threads = static_cast<std::size_t>(cli.uint_value("threads"));
  if (options.threads != 0) set_max_parallelism(options.threads);
  if (with_campaign && (campaign::campaign_requested(cli) || service::drain_requested(cli))) {
    options.campaign = true;
    options.campaign_name = campaign_name_from_summary(summary);
    // Inconsistent campaign/drain flags raise ConfigError out of here; the
    // campaign-enabled figure mains convert that into exit code 1.
    options.campaign_options = campaign::campaign_options_from_cli(cli, options.campaign_name);
    if (service::drain_requested(cli)) {
      options.distributed = true;
      options.drain_options = service::drain_options_from_cli(cli, options.campaign_name);
    }
  }
  return options;
}

std::unique_ptr<MtrmSweepExecutor> make_sweep_executor(const FigureOptions& options) {
  if (!options.campaign) return nullptr;
  if (options.distributed) {
    return std::make_unique<service::DistributedCampaignRunner>(options.campaign_name,
                                                                options.drain_options);
  }
  return std::make_unique<campaign::CampaignRunner>(options.campaign_name,
                                                    options.campaign_options);
}

double stationary_reference_range(double l, std::size_t n, std::size_t trials,
                                  double quantile, Rng& rng) {
  const Box2 region(l);
  MtrOptions options;
  options.trials = trials;
  options.target_probability = quantile;
  return estimate_mtr<2>(n, region, options, rng).range;
}

void apply_scale(MtrmConfig& config, const FigureOptions& options) {
  const ScaleParams scale = options.scale();
  config.iterations = scale.iterations;
  config.steps = scale.steps;
}

namespace {

/// --metrics epilogue: one BenchReport-schema JSON document with the run's
/// counters and timings. Emitted after the table (never instead of it) so
/// existing output consumers are unaffected unless they opt in.
void print_metrics_epilogue(const FigureOptions& options) {
  BenchReport report("run_metrics");
  report.add_param("preset", JsonValue::string(preset_name(options.preset)));
  report.add_param("seed", JsonValue::number(static_cast<std::size_t>(options.seed)));
  report.add_extra("metrics", metrics::collect_json());
  std::cout << '\n' << report.dump() << '\n';
}

}  // namespace

void print_result(const TextTable& table, const FigureOptions& options,
                  const std::string& title, const std::string& footnote) {
  if (options.csv) {
    table.print_csv(std::cout);
    if (options.metrics) print_metrics_epilogue(options);
    return;
  }
  const ScaleParams scale = options.scale();
  std::cout << title << "\n"
            << "preset=" << preset_name(options.preset) << " (" << scale.iterations
            << " iterations x " << scale.steps << " steps, " << scale.stationary_trials
            << " stationary trials), seed=" << options.seed << "\n\n";
  table.print(std::cout);
  if (footnote.empty()) {
    std::cout << "\nPaper columns are approximate values read off the published figure;\n"
                 "shapes (orderings, trends, thresholds) are the reproduction target,\n"
                 "not absolute numbers. See EXPERIMENTS.md.\n";
  } else {
    std::cout << '\n' << footnote << '\n';
  }
  if (options.metrics) print_metrics_epilogue(options);
}

std::string l_label(double l) {
  if (l >= 1024.0) return std::to_string(static_cast<int>(l / 1024.0)) + "K";
  return std::to_string(static_cast<int>(l));
}

namespace {

/// One measured figure data point: the stationary reference (when the figure
/// normalizes by it) and the MTRM solution.
struct FigurePoint {
  double rs = 0.0;
  MtrmResult result;
};

/// Fans the l-sweep data points out through the parallel engine: point i
/// draws from the order-independent substream of (options.seed, i), so the
/// table is bit-identical at any thread count, and each point's iteration
/// fan-out nests inside the same pool.
std::vector<FigurePoint> solve_l_sweep(const FigureOptions& options, bool drunkard,
                                       bool with_stationary_reference) {
  const ScaleParams scale = options.scale();
  const auto l_values = experiments::figure_l_values();
  return parallel_for_trials(
      l_values.size(), options.seed, [&](std::size_t li, Rng& point_rng) {
        const double l = l_values[li];
        const std::size_t n = experiments::paper_node_count(l);

        FigurePoint point;
        if (with_stationary_reference) {
          point.rs = stationary_reference_range(l, n, scale.stationary_trials,
                                                options.rs_quantile, point_rng);
        }
        MtrmConfig config = drunkard ? experiments::drunkard_experiment(l, options.preset)
                                     : experiments::waypoint_experiment(l, options.preset);
        apply_scale(config, options);
        point.result = solve_mtrm<2>(config, point_rng);
        return point;
      });
}

/// Campaign-mode l-sweep: the MTRM solves route through the resumable
/// runner via experiments::solve_mtrm_sweep, and the stationary reference
/// draws from its own substream family (offset by the point count so it
/// never collides with the sweep's per-point streams). Campaign-mode
/// numbers therefore differ from legacy-mode ones for the figures that
/// normalize by r_stationary — both are valid draws of the same estimator;
/// only the campaign path is resumable (DESIGN.md §11).
std::vector<FigurePoint> solve_l_sweep_campaign(const FigureOptions& options, bool drunkard,
                                                bool with_stationary_reference,
                                                MtrmSweepExecutor& executor) {
  const ScaleParams scale = options.scale();
  const auto l_values = experiments::figure_l_values();

  std::vector<MtrmConfig> configs;
  configs.reserve(l_values.size());
  for (const double l : l_values) {
    MtrmConfig config = drunkard ? experiments::drunkard_experiment(l, options.preset)
                                 : experiments::waypoint_experiment(l, options.preset);
    apply_scale(config, options);
    configs.push_back(config);
  }
  const auto results = experiments::solve_mtrm_sweep(configs, options.seed, &executor);

  std::vector<FigurePoint> points(l_values.size());
  for (std::size_t li = 0; li < l_values.size(); ++li) {
    if (with_stationary_reference) {
      Rng rs_rng = substream(options.seed, l_values.size() + li);
      points[li].rs = stationary_reference_range(l_values[li],
                                                 experiments::paper_node_count(l_values[li]),
                                                 scale.stationary_trials, options.rs_quantile,
                                                 rs_rng);
    }
    points[li].result = results[li];
  }
  return points;
}

std::vector<FigurePoint> solve_l_sweep_dispatch(const FigureOptions& options, bool drunkard,
                                                bool with_stationary_reference,
                                                MtrmSweepExecutor* executor) {
  if (executor != nullptr) {
    return solve_l_sweep_campaign(options, drunkard, with_stationary_reference, *executor);
  }
  return solve_l_sweep(options, drunkard, with_stationary_reference);
}

}  // namespace

void run_ratio_figure(const FigureOptions& options, bool drunkard,
                      const std::string& title, const std::vector<PaperSeries>& paper,
                      MtrmSweepExecutor* executor) {
  TextTable table({"l", "n", "r_stationary", "r100/rs", "paper", "r90/rs", "paper",
                   "r10/rs", "paper", "r0/rs", "paper"});

  const auto l_values = experiments::figure_l_values();
  const auto points =
      solve_l_sweep_dispatch(options, drunkard, /*with_stationary_reference=*/true, executor);
  for (std::size_t li = 0; li < l_values.size(); ++li) {
    const double l = l_values[li];
    const std::size_t n = experiments::paper_node_count(l);
    const double rs = points[li].rs;
    const MtrmResult& result = points[li].result;

    table.add_row({l_label(l), std::to_string(n), TextTable::num(rs, 1),
                   TextTable::num(result.range_for_time[0].mean() / rs, 3),
                   TextTable::num(paper[0].values[li], 2),
                   TextTable::num(result.range_for_time[1].mean() / rs, 3),
                   TextTable::num(paper[1].values[li], 2),
                   TextTable::num(result.range_for_time[2].mean() / rs, 3),
                   TextTable::num(paper[2].values[li], 2),
                   TextTable::num(result.range_never_connected.mean() / rs, 3),
                   TextTable::num(paper[3].values[li], 2)});
  }
  print_result(table, options, title);
}

void run_component_figure(const FigureOptions& options, bool drunkard,
                          const std::string& title, const std::vector<PaperSeries>& paper,
                          MtrmSweepExecutor* executor) {
  TextTable table({"l", "n", "LCC@r90", "paper", "LCC@r10", "paper", "LCC@r0", "paper"});

  const auto l_values = experiments::figure_l_values();
  const auto points =
      solve_l_sweep_dispatch(options, drunkard, /*with_stationary_reference=*/false, executor);
  for (std::size_t li = 0; li < l_values.size(); ++li) {
    const double l = l_values[li];
    const std::size_t n = experiments::paper_node_count(l);
    const MtrmResult& result = points[li].result;

    table.add_row({l_label(l), std::to_string(n),
                   TextTable::num(result.lcc_at_range_for_time[1].mean(), 3),
                   TextTable::num(paper[0].values[li], 2),
                   TextTable::num(result.lcc_at_range_for_time[2].mean(), 3),
                   TextTable::num(paper[1].values[li], 2),
                   TextTable::num(result.lcc_at_range_never.mean(), 3),
                   TextTable::num(paper[2].values[li], 2)});
  }
  print_result(table, options, title);
}

}  // namespace manet::bench
