// Microbenchmarks (google-benchmark) of the simulation substrate: the hot
// paths executed millions of times by the figure benches — proximity-graph
// construction, MST / critical-radius extraction, component-curve building,
// union-find sweeps and mobility stepping.

#include <benchmark/benchmark.h>

#include <vector>

#include "geometry/box.hpp"
#include "graph/proximity.hpp"
#include "graph/union_find.hpp"
#include "mobility/factory.hpp"
#include "sim/deployment.hpp"
#include "sim/mobile_trace.hpp"
#include "support/contracts.hpp"
#include "topology/critical_range.hpp"
#include "topology/mst.hpp"

namespace {

using namespace manet;

std::vector<Point2> bench_points(std::size_t n, double side, std::uint64_t seed) {
  Rng rng(seed);
  const Box2 box(side);
  return uniform_deployment(n, box, rng);
}

void BM_ProximityEdges(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = 1024.0;
  const Box2 box(side);
  const auto points = bench_points(n, side, 1);
  // A radius near the connectivity threshold: the interesting regime.
  const double radius = critical_range<2>(std::span<const Point2>(points));
  for (auto _ : state) {
    auto edges = proximity_edges<2>(points, box, radius);
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProximityEdges)->Arg(16)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_AnalyzeComponents(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = 1024.0;
  const Box2 box(side);
  const auto points = bench_points(n, side, 2);
  const double radius = critical_range<2>(std::span<const Point2>(points)) * 0.8;
  for (auto _ : state) {
    auto summary = analyze_components<2>(points, box, radius);
    benchmark::DoNotOptimize(summary);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AnalyzeComponents)->Arg(16)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_EuclideanMst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 1024.0, 3);
  for (auto _ : state) {
    auto mst = euclidean_mst<2>(std::span<const Point2>(points));
    benchmark::DoNotOptimize(mst);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EuclideanMst)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_LargestComponentCurve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 1024.0, 4);
  for (auto _ : state) {
    auto curve = largest_component_curve<2>(std::span<const Point2>(points));
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_LargestComponentCurve)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_UnionFindSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::pair<std::size_t, std::size_t>> unions;
  unions.reserve(4 * n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    unions.emplace_back(rng.uniform_index(n), rng.uniform_index(n));
  }
  for (auto _ : state) {
    UnionFind dsu(n);
    for (const auto& [a, b] : unions) {
      if (a != b) dsu.unite(a, b);
    }
    benchmark::DoNotOptimize(dsu.largest_component_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(unions.size()));
}
BENCHMARK(BM_UnionFindSweep)->Arg(128)->Arg(1024)->Arg(8192);

void BM_MobilityStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool drunkard = state.range(1) == 1;
  const double side = 4096.0;
  const Box2 box(side);
  Rng rng(6);
  auto positions = uniform_deployment(n, box, rng);
  const MobilityConfig config =
      drunkard ? MobilityConfig::paper_drunkard(side) : MobilityConfig::paper_waypoint(side);
  auto model = make_mobility_model<2>(config, box);
  model->initialize(positions, rng);
  for (auto _ : state) {
    model->step(positions, rng);
    benchmark::DoNotOptimize(positions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(drunkard ? "drunkard" : "waypoint");
}
BENCHMARK(BM_MobilityStep)->Args({64, 0})->Args({64, 1})->Args({1024, 0})->Args({1024, 1});

void BM_MobileTraceIteration(benchmark::State& state) {
  // One full mobile-simulation iteration at the paper's l = 4096 scale:
  // deploy, step, build a component curve per step.
  const std::size_t steps = static_cast<std::size_t>(state.range(0));
  const double side = 4096.0;
  const Box2 box(side);
  const std::size_t n = 64;
  std::uint64_t seed = 7;
  for (auto _ : state) {
    Rng rng(seed++);
    auto model = make_mobility_model<2>(MobilityConfig::paper_waypoint(side), box);
    auto trace = run_mobile_trace<2>(n, box, steps, *model, rng);
    benchmark::DoNotOptimize(trace.range_for_time_fraction(1.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_MobileTraceIteration)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Contract-overhead check (ISSUE: "compiled to nothing in Release").
//
// The two benchmarks below run the same accumulation loop with and without a
// MANET_INVARIANT in the body. In Release / any NDEBUG build without
// MANET_SANITIZE, MANET_ENABLE_CONTRACTS is 0 and the macro expands to an
// unevaluated sizeof — the two benches must report identical times (the
// condition `acc >= 0.0` is never even computed). In contract-enabled builds
// they quantify the cost of one predicate per iteration.
// ---------------------------------------------------------------------------

void BM_PlainAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> values(n);
  for (double& v : values) v = rng.uniform();
  for (auto _ : state) {
    double acc = 0.0;
    for (double v : values) acc += v;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(MANET_ENABLE_CONTRACTS ? "contracts=on" : "contracts=off");
}
BENCHMARK(BM_PlainAccumulate)->Arg(4096)->Arg(65536);

void BM_ContractGuardedAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> values(n);
  for (double& v : values) v = rng.uniform();
  for (auto _ : state) {
    double acc = 0.0;
    for (double v : values) {
      acc += v;
      MANET_INVARIANT(acc >= 0.0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(MANET_ENABLE_CONTRACTS ? "contracts=on" : "contracts=off");
}
BENCHMARK(BM_ContractGuardedAccumulate)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
