// Figure 3 of the paper: values of r100/r90/r10/r0 relative to r_stationary
// for increasing system size l in the DRUNKARD model.
//
// Setup (Section 4.2): l in {256, 1K, 4K, 16K}, n = sqrt(l),
// p_stationary = 0.1, p_pause = 0.3, m = 0.01*l.
//
// Expected shape: same qualitative behaviour as Figure 2 with slightly
// higher ratios (the paper reads ~25% premium for r100 at l = 16K) — the
// headline observation being how similar the two mobility models are.

#include "common/figure_bench.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig3_drunkard_ratios: r_x / r_stationary vs l, drunkard model");
  if (!options) return 0;

  // Digitized from the published Figure 3 (approximate).
  const std::vector<PaperSeries> paper = {
      {"r100/rs", {1.06, 1.12, 1.18, 1.25}},
      {"r90/rs", {0.64, 0.68, 0.72, 0.78}},
      {"r10/rs", {0.41, 0.43, 0.45, 0.48}},
      {"r0/rs", {0.26, 0.29, 0.32, 0.36}},
  };
  run_ratio_figure(*options, /*drunkard=*/true,
                   "Figure 3 — r_x / r_stationary vs l (drunkard)", paper);
  return 0;
}
