// Figure 6 of the paper: the ranges rl90 / rl75 / rl50 (mean largest
// component = 0.9n / 0.75n / 0.5n) relative to r_stationary for increasing
// l, RANDOM WAYPOINT model.
//
// Expected shape: rl90/rs decreases with l toward ~0.52; rl75/rs (~0.46)
// and rl50/rs (~0.40) are almost flat; the three curves converge as l
// grows ("for large networks the savings are not as great if the
// requirement is only 50% of the nodes").

#include "common/figure_bench.hpp"

int main(int argc, char** argv) {
  using namespace manet;
  using namespace manet::bench;
  const auto options = parse_figure_options(
      argc, argv, "fig6_component_targets: rl90/rl75/rl50 over r_stationary vs l");
  if (!options) return 0;

  // Digitized from the published Figure 6 (approximate).
  const std::vector<PaperSeries> paper = {
      {"rl90/rs", {0.75, 0.64, 0.57, 0.52}},
      {"rl75/rs", {0.50, 0.47, 0.46, 0.46}},
      {"rl50/rs", {0.35, 0.38, 0.39, 0.40}},
  };

  Rng rng(options->seed);
  const ScaleParams scale = options->scale();
  TextTable table({"l", "n", "rl90/rs", "paper", "rl75/rs", "paper", "rl50/rs", "paper"});

  const auto l_values = experiments::figure_l_values();
  for (std::size_t li = 0; li < l_values.size(); ++li) {
    const double l = l_values[li];
    const std::size_t n = experiments::paper_node_count(l);

    Rng point_rng = rng.split();
    const double rs = stationary_reference_range(l, n, scale.stationary_trials, options->rs_quantile, point_rng);

    MtrmConfig config = experiments::waypoint_experiment(l, options->preset);
    apply_scale(config, *options);
    const MtrmResult result = solve_mtrm<2>(config, point_rng);

    const std::string l_text = l_label(l);
    table.add_row({l_text, std::to_string(n),
                   TextTable::num(result.range_for_component[0].mean() / rs, 3),
                   TextTable::num(paper[0].values[li], 2),
                   TextTable::num(result.range_for_component[1].mean() / rs, 3),
                   TextTable::num(paper[1].values[li], 2),
                   TextTable::num(result.range_for_component[2].mean() / rs, 3),
                   TextTable::num(paper[2].values[li], 2)});
  }
  print_result(table, *options,
               "Figure 6 — rl_phi / r_stationary vs l (random waypoint)");
  return 0;
}
